// Map-family algorithms vs their std:: counterparts, over every policy type
// and a boundary-heavy size grid.
#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <numeric>
#include <string>
#include <vector>

#include "pstlb/pstlb.hpp"
#include "support/policies.hpp"

namespace {

using pstlb::index_t;

std::vector<double> make_input(index_t n) {
  std::vector<double> v(static_cast<std::size_t>(n));
  for (index_t i = 0; i < n; ++i) {
    v[static_cast<std::size_t>(i)] = static_cast<double>((i * 37 + 11) % 1000);
  }
  return v;
}

template <class P>
class ForeachAlgos : public ::testing::Test {
 protected:
  P pol = pstlb::test::make_eager<P>();
};

TYPED_TEST_SUITE(ForeachAlgos, PstlbPolicyTypes);

TYPED_TEST(ForeachAlgos, ForEachAppliesToAll) {
  for (index_t n : pstlb::test::test_sizes()) {
    auto v = make_input(n);
    auto expected = v;
    std::for_each(expected.begin(), expected.end(), [](double& x) { x = x * 2 + 1; });
    pstlb::for_each(this->pol, v.begin(), v.end(), [](double& x) { x = x * 2 + 1; });
    ASSERT_EQ(v, expected) << "n=" << n;
  }
}

TYPED_TEST(ForeachAlgos, ForEachNReturnsEnd) {
  auto v = make_input(1000);
  auto end = pstlb::for_each_n(this->pol, v.begin(), 600, [](double& x) { x = -x; });
  EXPECT_EQ(end, v.begin() + 600);
  EXPECT_LE(v[0], 0);
  EXPECT_GT(v[600], 0);
}

TYPED_TEST(ForeachAlgos, TransformUnary) {
  for (index_t n : pstlb::test::test_sizes()) {
    const auto v = make_input(n);
    std::vector<double> out(v.size()), expected(v.size());
    std::transform(v.begin(), v.end(), expected.begin(), [](double x) { return x * x; });
    auto ret = pstlb::transform(this->pol, v.begin(), v.end(), out.begin(),
                                [](double x) { return x * x; });
    EXPECT_EQ(ret, out.end());
    ASSERT_EQ(out, expected) << "n=" << n;
  }
}

TYPED_TEST(ForeachAlgos, TransformBinary) {
  const index_t n = 12345;
  const auto a = make_input(n);
  auto b = make_input(n);
  std::reverse(b.begin(), b.end());
  std::vector<double> out(a.size()), expected(a.size());
  std::transform(a.begin(), a.end(), b.begin(), expected.begin(), std::plus<>{});
  pstlb::transform(this->pol, a.begin(), a.end(), b.begin(), out.begin(), std::plus<>{});
  ASSERT_EQ(out, expected);
}

TYPED_TEST(ForeachAlgos, FillAndFillN) {
  for (index_t n : pstlb::test::test_sizes()) {
    std::vector<double> v(static_cast<std::size_t>(n), 0.0);
    pstlb::fill(this->pol, v.begin(), v.end(), 3.5);
    EXPECT_TRUE(std::all_of(v.begin(), v.end(), [](double x) { return x == 3.5; }));
  }
  std::vector<double> v(100, 0.0);
  auto end = pstlb::fill_n(this->pol, v.begin(), 60, 1.0);
  EXPECT_EQ(end, v.begin() + 60);
  EXPECT_EQ(std::count(v.begin(), v.end(), 1.0), 60);
}

TYPED_TEST(ForeachAlgos, GenerateIsStatelesslyCorrect) {
  std::vector<double> v(10000, 0.0);
  pstlb::generate(this->pol, v.begin(), v.end(), [] { return 7.0; });
  EXPECT_TRUE(std::all_of(v.begin(), v.end(), [](double x) { return x == 7.0; }));
  auto end = pstlb::generate_n(this->pol, v.begin(), 5000, [] { return 9.0; });
  EXPECT_EQ(end, v.begin() + 5000);
  EXPECT_EQ(std::count(v.begin(), v.end(), 9.0), 5000);
}

TYPED_TEST(ForeachAlgos, CopyAndCopyN) {
  for (index_t n : pstlb::test::test_sizes()) {
    const auto v = make_input(n);
    std::vector<double> out(v.size(), -1.0);
    auto ret = pstlb::copy(this->pol, v.begin(), v.end(), out.begin());
    EXPECT_EQ(ret, out.end());
    ASSERT_EQ(out, v) << "n=" << n;
  }
  const auto v = make_input(1000);
  std::vector<double> out(1000, -1.0);
  pstlb::copy_n(this->pol, v.begin(), 500, out.begin());
  EXPECT_TRUE(std::equal(v.begin(), v.begin() + 500, out.begin()));
  EXPECT_EQ(out[500], -1.0);
}

TYPED_TEST(ForeachAlgos, MoveMovesValues) {
  std::vector<std::string> src;
  for (int i = 0; i < 5000; ++i) { src.push_back("value-" + std::to_string(i)); }
  auto expected = src;
  std::vector<std::string> out(src.size());
  pstlb::move(this->pol, src.begin(), src.end(), out.begin());
  ASSERT_EQ(out, expected);
}

TYPED_TEST(ForeachAlgos, SwapRanges) {
  auto a = make_input(9999);
  auto b = make_input(9999);
  std::for_each(b.begin(), b.end(), [](double& x) { x += 1e6; });
  const auto a0 = a;
  const auto b0 = b;
  pstlb::swap_ranges(this->pol, a.begin(), a.end(), b.begin());
  EXPECT_EQ(a, b0);
  EXPECT_EQ(b, a0);
}

TYPED_TEST(ForeachAlgos, ReplaceFamily) {
  auto v = make_input(10000);
  auto expected = v;
  std::replace(expected.begin(), expected.end(), 11.0, -1.0);
  pstlb::replace(this->pol, v.begin(), v.end(), 11.0, -1.0);
  ASSERT_EQ(v, expected);

  std::replace_if(expected.begin(), expected.end(), [](double x) { return x > 500; }, 0.0);
  pstlb::replace_if(this->pol, v.begin(), v.end(), [](double x) { return x > 500; }, 0.0);
  ASSERT_EQ(v, expected);

  std::vector<double> out(v.size()), out_expected(v.size());
  std::replace_copy(v.begin(), v.end(), out_expected.begin(), 0.0, 42.0);
  pstlb::replace_copy(this->pol, v.begin(), v.end(), out.begin(), 0.0, 42.0);
  ASSERT_EQ(out, out_expected);
}

TYPED_TEST(ForeachAlgos, ReverseOddAndEven) {
  for (index_t n : {index_t{0}, index_t{1}, index_t{2}, index_t{9}, index_t{10},
                    index_t{10001}}) {
    auto v = make_input(n);
    auto expected = v;
    std::reverse(expected.begin(), expected.end());
    pstlb::reverse(this->pol, v.begin(), v.end());
    ASSERT_EQ(v, expected) << "n=" << n;
  }
}

TYPED_TEST(ForeachAlgos, ReverseCopy) {
  const auto v = make_input(8191);
  std::vector<double> out(v.size()), expected(v.size());
  std::reverse_copy(v.begin(), v.end(), expected.begin());
  pstlb::reverse_copy(this->pol, v.begin(), v.end(), out.begin());
  ASSERT_EQ(out, expected);
}

TYPED_TEST(ForeachAlgos, RotateAndRotateCopy) {
  for (index_t shift : {index_t{0}, index_t{1}, index_t{1000}, index_t{9999},
                        index_t{10000}}) {
    auto v = make_input(10000);
    auto expected = v;
    std::rotate(expected.begin(), expected.begin() + shift, expected.end());
    auto ret = pstlb::rotate(this->pol, v.begin(), v.begin() + shift, v.end());
    ASSERT_EQ(v, expected) << "shift=" << shift;
    EXPECT_EQ(ret - v.begin(), 10000 - shift);
  }
  const auto v = make_input(5000);
  std::vector<double> out(v.size()), expected(v.size());
  std::rotate_copy(v.begin(), v.begin() + 1234, v.end(), expected.begin());
  pstlb::rotate_copy(this->pol, v.begin(), v.begin() + 1234, v.end(), out.begin());
  ASSERT_EQ(out, expected);
}

TYPED_TEST(ForeachAlgos, ShiftLeftAndRight) {
  for (index_t shift : {index_t{0}, index_t{1}, index_t{777}, index_t{9999},
                        index_t{10000}, index_t{20000}}) {
    auto v = make_input(10000);
    auto expected = v;
    auto e = std::shift_left(expected.begin(), expected.end(), shift);
    auto o = pstlb::shift_left(this->pol, v.begin(), v.end(), shift);
    ASSERT_EQ(o - v.begin(), e - expected.begin()) << "shift=" << shift;
    ASSERT_TRUE(std::equal(v.begin(), o, expected.begin())) << "shift=" << shift;

    auto v2 = make_input(10000);
    auto expected2 = v2;
    auto e2 = std::shift_right(expected2.begin(), expected2.end(), shift);
    auto o2 = pstlb::shift_right(this->pol, v2.begin(), v2.end(), shift);
    ASSERT_EQ(o2 - v2.begin(), e2 - expected2.begin()) << "shift=" << shift;
    ASSERT_TRUE(std::equal(o2, v2.end(), e2)) << "shift=" << shift;
  }
}

TYPED_TEST(ForeachAlgos, AdjacentDifference) {
  for (index_t n : {index_t{1}, index_t{2}, index_t{10000}}) {
    const auto v = make_input(n);
    std::vector<double> out(v.size()), expected(v.size());
    std::adjacent_difference(v.begin(), v.end(), expected.begin());
    pstlb::adjacent_difference(this->pol, v.begin(), v.end(), out.begin());
    ASSERT_EQ(out, expected) << "n=" << n;
  }
}

TYPED_TEST(ForeachAlgos, UninitializedFamily) {
  const std::size_t n = 4096;
  std::allocator<std::string> alloc;
  std::string* raw = alloc.allocate(n);
  pstlb::uninitialized_fill(this->pol, raw, raw + n, std::string("abc"));
  EXPECT_TRUE(std::all_of(raw, raw + n, [](const std::string& s) { return s == "abc"; }));
  pstlb::destroy(this->pol, raw, raw + n);

  std::vector<std::string> src(n, "xyz");
  pstlb::uninitialized_copy(this->pol, src.begin(), src.end(), raw);
  EXPECT_TRUE(std::all_of(raw, raw + n, [](const std::string& s) { return s == "xyz"; }));
  pstlb::destroy_n(this->pol, raw, n);
  alloc.deallocate(raw, n);
}

TEST(ForeachSeq, SeqPolicyMatchesStd) {
  auto v = make_input(1000);
  auto expected = v;
  std::for_each(expected.begin(), expected.end(), [](double& x) { x += 1; });
  pstlb::for_each(pstlb::exec::seq, v.begin(), v.end(), [](double& x) { x += 1; });
  EXPECT_EQ(v, expected);
}

}  // namespace
