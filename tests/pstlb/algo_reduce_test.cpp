// Reduce/search-family algorithms vs std::, all policies.
#include <gtest/gtest.h>

#include <algorithm>
#include <numeric>
#include <vector>

#include "pstlb/pstlb.hpp"
#include "support/policies.hpp"

namespace {

using pstlb::index_t;

std::vector<long long> make_ints(index_t n) {
  std::vector<long long> v(static_cast<std::size_t>(n));
  for (index_t i = 0; i < n; ++i) {
    v[static_cast<std::size_t>(i)] = (i * 2654435761LL + 17) % 10007;
  }
  return v;
}

template <class P>
class ReduceAlgos : public ::testing::Test {
 protected:
  P pol = pstlb::test::make_eager<P>();
};

TYPED_TEST_SUITE(ReduceAlgos, PstlbPolicyTypes);

TYPED_TEST(ReduceAlgos, ReduceMatchesStd) {
  for (index_t n : pstlb::test::test_sizes()) {
    const auto v = make_ints(n);
    EXPECT_EQ(pstlb::reduce(this->pol, v.begin(), v.end()),
              std::reduce(v.begin(), v.end()))
        << "n=" << n;
    EXPECT_EQ(pstlb::reduce(this->pol, v.begin(), v.end(), 100LL),
              std::reduce(v.begin(), v.end(), 100LL));
    EXPECT_EQ(pstlb::reduce(this->pol, v.begin(), v.end(), 1LL,
                            [](long long a, long long b) { return a ^ b; }),
              std::reduce(v.begin(), v.end(), 1LL,
                          [](long long a, long long b) { return a ^ b; }));
  }
}

TYPED_TEST(ReduceAlgos, TransformReduceForms) {
  const auto a = make_ints(10007);
  const auto b = make_ints(10007);
  EXPECT_EQ(pstlb::transform_reduce(this->pol, a.begin(), a.end(), b.begin(), 0LL),
            std::transform_reduce(a.begin(), a.end(), b.begin(), 0LL));
  EXPECT_EQ(pstlb::transform_reduce(this->pol, a.begin(), a.end(), 0LL, std::plus<>{},
                                    [](long long x) { return x % 7; }),
            std::transform_reduce(a.begin(), a.end(), 0LL, std::plus<>{},
                                  [](long long x) { return x % 7; }));
  EXPECT_EQ(pstlb::transform_reduce(this->pol, a.begin(), a.end(), b.begin(), 0LL,
                                    std::plus<>{},
                                    [](long long x, long long y) { return x ^ y; }),
            std::transform_reduce(a.begin(), a.end(), b.begin(), 0LL, std::plus<>{},
                                  [](long long x, long long y) { return x ^ y; }));
}

TYPED_TEST(ReduceAlgos, CountAndCountIf) {
  for (index_t n : pstlb::test::test_sizes()) {
    const auto v = make_ints(n);
    EXPECT_EQ(pstlb::count(this->pol, v.begin(), v.end(), 17LL),
              std::count(v.begin(), v.end(), 17LL))
        << n;
    EXPECT_EQ(pstlb::count_if(this->pol, v.begin(), v.end(),
                              [](long long x) { return x % 2 == 0; }),
              std::count_if(v.begin(), v.end(), [](long long x) { return x % 2 == 0; }));
  }
}

TYPED_TEST(ReduceAlgos, MinMaxElementsIncludingTies) {
  // Duplicated extrema check tie-breaking: min/max keep the first, the max
  // of minmax_element keeps the last.
  std::vector<int> v{5, 1, 9, 1, 9, 3, 1, 9, 2};
  EXPECT_EQ(pstlb::min_element(this->pol, v.begin(), v.end()) - v.begin(),
            std::min_element(v.begin(), v.end()) - v.begin());
  EXPECT_EQ(pstlb::max_element(this->pol, v.begin(), v.end()) - v.begin(),
            std::max_element(v.begin(), v.end()) - v.begin());
  const auto ours = pstlb::minmax_element(this->pol, v.begin(), v.end());
  const auto stds = std::minmax_element(v.begin(), v.end());
  EXPECT_EQ(ours.first - v.begin(), stds.first - v.begin());
  EXPECT_EQ(ours.second - v.begin(), stds.second - v.begin());

  for (index_t n : {index_t{1}, index_t{9973}, index_t{65536}}) {
    const auto big = make_ints(n);
    EXPECT_EQ(pstlb::min_element(this->pol, big.begin(), big.end()) - big.begin(),
              std::min_element(big.begin(), big.end()) - big.begin())
        << n;
    EXPECT_EQ(pstlb::max_element(this->pol, big.begin(), big.end()) - big.begin(),
              std::max_element(big.begin(), big.end()) - big.begin());
    const auto o = pstlb::minmax_element(this->pol, big.begin(), big.end());
    const auto s = std::minmax_element(big.begin(), big.end());
    EXPECT_EQ(o.first - big.begin(), s.first - big.begin());
    EXPECT_EQ(o.second - big.begin(), s.second - big.begin());
  }
}

TYPED_TEST(ReduceAlgos, FindFamilyReturnsFirstOccurrence) {
  auto v = make_ints(65536);
  v[60000] = -5;
  v[60001] = -5;
  EXPECT_EQ(pstlb::find(this->pol, v.begin(), v.end(), -5LL) - v.begin(), 60000);
  EXPECT_EQ(pstlb::find_if(this->pol, v.begin(), v.end(),
                           [](long long x) { return x < 0; }) -
                v.begin(),
            60000);
  EXPECT_EQ(pstlb::find_if_not(this->pol, v.begin(), v.end(),
                               [](long long x) { return x >= 0; }) -
                v.begin(),
            60000);
  EXPECT_EQ(pstlb::find(this->pol, v.begin(), v.end(), -999LL), v.end());
}

TYPED_TEST(ReduceAlgos, AnyAllNoneOf) {
  const auto v = make_ints(20000);
  EXPECT_TRUE(pstlb::all_of(this->pol, v.begin(), v.end(),
                            [](long long x) { return x >= 0; }));
  EXPECT_FALSE(pstlb::any_of(this->pol, v.begin(), v.end(),
                             [](long long x) { return x < 0; }));
  EXPECT_TRUE(pstlb::none_of(this->pol, v.begin(), v.end(),
                             [](long long x) { return x > 100000; }));
  // Empty ranges.
  EXPECT_TRUE(pstlb::all_of(this->pol, v.begin(), v.begin(),
                            [](long long) { return false; }));
  EXPECT_FALSE(pstlb::any_of(this->pol, v.begin(), v.begin(),
                             [](long long) { return true; }));
}

TYPED_TEST(ReduceAlgos, AdjacentFind) {
  auto v = make_ints(50000);
  // Make sure no accidental neighbors exist, then plant one pair.
  for (std::size_t i = 1; i < v.size(); ++i) {
    if (v[i] == v[i - 1]) { v[i] += 1; }
  }
  EXPECT_EQ(pstlb::adjacent_find(this->pol, v.begin(), v.end()), v.end());
  v[30000] = v[29999];
  EXPECT_EQ(pstlb::adjacent_find(this->pol, v.begin(), v.end()) - v.begin(), 29999);
}

TYPED_TEST(ReduceAlgos, MismatchAndEqual) {
  const auto a = make_ints(30000);
  auto b = a;
  EXPECT_TRUE(pstlb::equal(this->pol, a.begin(), a.end(), b.begin()));
  EXPECT_EQ(pstlb::mismatch(this->pol, a.begin(), a.end(), b.begin()).first, a.end());
  b[20000] += 1;
  EXPECT_FALSE(pstlb::equal(this->pol, a.begin(), a.end(), b.begin()));
  EXPECT_EQ(pstlb::mismatch(this->pol, a.begin(), a.end(), b.begin()).first - a.begin(),
            20000);
  // Four-iterator forms.
  EXPECT_FALSE(pstlb::equal(this->pol, a.begin(), a.end(), b.begin(), b.end() - 1));
  const auto mm = pstlb::mismatch(this->pol, a.begin(), a.end(), b.begin(), b.end());
  EXPECT_EQ(mm.first - a.begin(), 20000);
}

TYPED_TEST(ReduceAlgos, SortednessChecks) {
  std::vector<int> sorted(40000);
  std::iota(sorted.begin(), sorted.end(), 0);
  EXPECT_TRUE(pstlb::is_sorted(this->pol, sorted.begin(), sorted.end()));
  EXPECT_EQ(pstlb::is_sorted_until(this->pol, sorted.begin(), sorted.end()),
            sorted.end());
  auto broken = sorted;
  broken[25000] = -1;
  EXPECT_FALSE(pstlb::is_sorted(this->pol, broken.begin(), broken.end()));
  EXPECT_EQ(pstlb::is_sorted_until(this->pol, broken.begin(), broken.end()) -
                broken.begin(),
            std::is_sorted_until(broken.begin(), broken.end()) - broken.begin());
}

TYPED_TEST(ReduceAlgos, HeapChecks) {
  std::vector<int> v = [] {
    std::vector<int> data;
    for (int i = 0; i < 30000; ++i) { data.push_back((i * 7919) % 100000); }
    std::make_heap(data.begin(), data.end());
    return data;
  }();
  EXPECT_TRUE(pstlb::is_heap(this->pol, v.begin(), v.end()));
  EXPECT_EQ(pstlb::is_heap_until(this->pol, v.begin(), v.end()), v.end());
  auto broken = v;
  broken[20000] = 1000000;
  EXPECT_FALSE(pstlb::is_heap(this->pol, broken.begin(), broken.end()));
  EXPECT_EQ(pstlb::is_heap_until(this->pol, broken.begin(), broken.end()) -
                broken.begin(),
            std::is_heap_until(broken.begin(), broken.end()) - broken.begin());
}

TYPED_TEST(ReduceAlgos, IsPartitioned) {
  std::vector<int> v(10000);
  std::iota(v.begin(), v.end(), 0);
  auto is_small = [](int x) { return x < 5000; };
  EXPECT_TRUE(pstlb::is_partitioned(this->pol, v.begin(), v.end(), is_small));
  std::swap(v[100], v[9000]);
  EXPECT_FALSE(pstlb::is_partitioned(this->pol, v.begin(), v.end(), is_small));
}

TYPED_TEST(ReduceAlgos, LexicographicalCompare) {
  const auto a = make_ints(20000);
  auto b = a;
  EXPECT_FALSE(pstlb::lexicographical_compare(this->pol, a.begin(), a.end(), b.begin(),
                                              b.end()));
  b[15000] += 1;
  EXPECT_TRUE(pstlb::lexicographical_compare(this->pol, a.begin(), a.end(), b.begin(),
                                             b.end()));
  EXPECT_FALSE(pstlb::lexicographical_compare(this->pol, b.begin(), b.end(), a.begin(),
                                              a.end()));
  // Prefix relation: shorter-but-equal compares less.
  EXPECT_TRUE(pstlb::lexicographical_compare(this->pol, a.begin(), a.end() - 1,
                                             a.begin(), a.end()));
}

TYPED_TEST(ReduceAlgos, SearchFamily) {
  const auto v = make_ints(50000);
  const std::vector<long long> needle(v.begin() + 33000, v.begin() + 33010);
  EXPECT_EQ(pstlb::search(this->pol, v.begin(), v.end(), needle.begin(), needle.end()) -
                v.begin(),
            std::search(v.begin(), v.end(), needle.begin(), needle.end()) - v.begin());
  const std::vector<long long> missing{1, 2, 3, 4, 5, -1};
  EXPECT_EQ(pstlb::search(this->pol, v.begin(), v.end(), missing.begin(), missing.end()),
            v.end());
  // Empty needle matches at the beginning.
  EXPECT_EQ(pstlb::search(this->pol, v.begin(), v.end(), missing.begin(),
                          missing.begin()),
            v.begin());

  std::vector<int> rep(20000, 0);
  rep[7000] = rep[7001] = rep[7002] = 1;
  EXPECT_EQ(pstlb::search_n(this->pol, rep.begin(), rep.end(), 3, 1) - rep.begin(), 7000);
  EXPECT_EQ(pstlb::search_n(this->pol, rep.begin(), rep.end(), 4, 1), rep.end());
}

TYPED_TEST(ReduceAlgos, FindEndAndFindFirstOf) {
  std::vector<int> v(40000, 0);
  const std::vector<int> pat{1, 2, 1};
  auto plant = [&](std::size_t at) {
    v[at] = 1;
    v[at + 1] = 2;
    v[at + 2] = 1;
  };
  plant(100);
  plant(25000);
  plant(39000);
  EXPECT_EQ(pstlb::find_end(this->pol, v.begin(), v.end(), pat.begin(), pat.end()) -
                v.begin(),
            39000);
  const std::vector<int> targets{7, 2};
  EXPECT_EQ(pstlb::find_first_of(this->pol, v.begin(), v.end(), targets.begin(),
                                 targets.end()) -
                v.begin(),
            101);
}

TEST(ReduceFloating, ReduceIsAccurateWithinTolerance) {
  std::vector<double> v(1 << 18, 0.1);
  auto pol = pstlb::test::make_eager<pstlb::exec::steal_policy>();
  const double sum = pstlb::reduce(pol, v.begin(), v.end());
  EXPECT_NEAR(sum, 0.1 * (1 << 18), 1e-6);
}

}  // namespace
