// Scan-family and pack-family algorithms vs std::, all policies — including
// the single-pass decoupled-lookback skeleton (the default) against the
// two-pass skeleton, non-commutative operators, a 1..N thread sweep, and
// the bytes-read accounting that distinguishes the two skeletons.
#include <gtest/gtest.h>

#include <algorithm>
#include <array>
#include <numeric>
#include <string>
#include <vector>

#include "counters/counters.hpp"
#include "pstlb/pstlb.hpp"
#include "support/policies.hpp"

namespace {

using pstlb::index_t;

std::vector<long long> make_ints(index_t n) {
  std::vector<long long> v(static_cast<std::size_t>(n));
  for (index_t i = 0; i < n; ++i) {
    v[static_cast<std::size_t>(i)] = (i * 1103515245LL + 12345) % 1000;
  }
  return v;
}

template <class P>
class ScanAlgos : public ::testing::Test {
 protected:
  P pol = pstlb::test::make_eager<P>();
};

TYPED_TEST_SUITE(ScanAlgos, PstlbPolicyTypes);

TYPED_TEST(ScanAlgos, InclusiveScanAllForms) {
  for (index_t n : pstlb::test::test_sizes()) {
    const auto v = make_ints(n);
    std::vector<long long> out(v.size()), expected(v.size());

    std::inclusive_scan(v.begin(), v.end(), expected.begin());
    auto ret = pstlb::inclusive_scan(this->pol, v.begin(), v.end(), out.begin());
    EXPECT_EQ(ret, out.end());
    ASSERT_EQ(out, expected) << "n=" << n;

    std::inclusive_scan(v.begin(), v.end(), expected.begin(), std::plus<>{});
    pstlb::inclusive_scan(this->pol, v.begin(), v.end(), out.begin(), std::plus<>{});
    ASSERT_EQ(out, expected);

    std::inclusive_scan(v.begin(), v.end(), expected.begin(), std::plus<>{}, 1000LL);
    pstlb::inclusive_scan(this->pol, v.begin(), v.end(), out.begin(), std::plus<>{},
                          1000LL);
    ASSERT_EQ(out, expected) << "n=" << n;
  }
}

TYPED_TEST(ScanAlgos, ExclusiveScan) {
  for (index_t n : pstlb::test::test_sizes()) {
    const auto v = make_ints(n);
    std::vector<long long> out(v.size()), expected(v.size());
    std::exclusive_scan(v.begin(), v.end(), expected.begin(), 7LL);
    auto ret = pstlb::exclusive_scan(this->pol, v.begin(), v.end(), out.begin(), 7LL);
    EXPECT_EQ(ret, out.end());
    ASSERT_EQ(out, expected) << "n=" << n;

    // Custom op must be associative (a std:: requirement too): use max.
    auto maxop = [](long long a, long long b) { return a > b ? a : b; };
    std::exclusive_scan(v.begin(), v.end(), expected.begin(), -1LL, maxop);
    pstlb::exclusive_scan(this->pol, v.begin(), v.end(), out.begin(), -1LL, maxop);
    ASSERT_EQ(out, expected);
  }
}

TYPED_TEST(ScanAlgos, TransformScans) {
  const auto v = make_ints(30000);
  std::vector<long long> out(v.size()), expected(v.size());
  auto square = [](long long x) { return x * x; };

  std::transform_inclusive_scan(v.begin(), v.end(), expected.begin(), std::plus<>{},
                                square);
  pstlb::transform_inclusive_scan(this->pol, v.begin(), v.end(), out.begin(),
                                  std::plus<>{}, square);
  ASSERT_EQ(out, expected);

  std::transform_inclusive_scan(v.begin(), v.end(), expected.begin(), std::plus<>{},
                                square, 5LL);
  pstlb::transform_inclusive_scan(this->pol, v.begin(), v.end(), out.begin(),
                                  std::plus<>{}, square, 5LL);
  ASSERT_EQ(out, expected);

  std::transform_exclusive_scan(v.begin(), v.end(), expected.begin(), 5LL,
                                std::plus<>{}, square);
  pstlb::transform_exclusive_scan(this->pol, v.begin(), v.end(), out.begin(), 5LL,
                                  std::plus<>{}, square);
  ASSERT_EQ(out, expected);
}

TYPED_TEST(ScanAlgos, CopyIfKeepsOrder) {
  for (index_t n : pstlb::test::test_sizes()) {
    const auto v = make_ints(n);
    std::vector<long long> out(v.size(), -99), expected(v.size(), -99);
    auto pred = [](long long x) { return x % 3 == 0; };
    auto expected_end = std::copy_if(v.begin(), v.end(), expected.begin(), pred);
    auto out_end = pstlb::copy_if(this->pol, v.begin(), v.end(), out.begin(), pred);
    ASSERT_EQ(out_end - out.begin(), expected_end - expected.begin()) << n;
    ASSERT_EQ(out, expected) << "n=" << n;
  }
}

TYPED_TEST(ScanAlgos, RemoveCopyFamily) {
  const auto v = make_ints(20000);
  std::vector<long long> out(v.size()), expected(v.size());
  auto e1 = std::remove_copy(v.begin(), v.end(), expected.begin(), 17LL);
  auto o1 = pstlb::remove_copy(this->pol, v.begin(), v.end(), out.begin(), 17LL);
  EXPECT_EQ(o1 - out.begin(), e1 - expected.begin());
  EXPECT_EQ(out, expected);

  auto pred = [](long long x) { return x < 100; };
  auto e2 = std::remove_copy_if(v.begin(), v.end(), expected.begin(), pred);
  auto o2 = pstlb::remove_copy_if(this->pol, v.begin(), v.end(), out.begin(), pred);
  EXPECT_EQ(o2 - out.begin(), e2 - expected.begin());
  EXPECT_EQ(out, expected);
}

TYPED_TEST(ScanAlgos, PartitionCopySplitsBoth) {
  const auto v = make_ints(30000);
  auto pred = [](long long x) { return x % 2 == 0; };
  std::vector<long long> t_out(v.size()), f_out(v.size()), t_exp(v.size()),
      f_exp(v.size());
  auto exp = std::partition_copy(v.begin(), v.end(), t_exp.begin(), f_exp.begin(), pred);
  auto got =
      pstlb::partition_copy(this->pol, v.begin(), v.end(), t_out.begin(), f_out.begin(), pred);
  EXPECT_EQ(got.first - t_out.begin(), exp.first - t_exp.begin());
  EXPECT_EQ(got.second - f_out.begin(), exp.second - f_exp.begin());
  EXPECT_EQ(t_out, t_exp);
  EXPECT_EQ(f_out, f_exp);
}

TYPED_TEST(ScanAlgos, UniqueFamilies) {
  for (index_t n : {index_t{0}, index_t{1}, index_t{2}, index_t{10000}}) {
    auto v = make_ints(n);
    std::sort(v.begin(), v.end());  // create long equal runs

    std::vector<long long> out(v.size()), expected(v.size());
    auto e = std::unique_copy(v.begin(), v.end(), expected.begin());
    auto o = pstlb::unique_copy(this->pol, v.begin(), v.end(), out.begin());
    ASSERT_EQ(o - out.begin(), e - expected.begin()) << n;
    ASSERT_TRUE(std::equal(out.begin(), o, expected.begin())) << n;

    auto v2 = v;
    auto e2 = std::unique(v.begin(), v.end());
    auto o2 = pstlb::unique(this->pol, v2.begin(), v2.end());
    ASSERT_EQ(o2 - v2.begin(), e2 - v.begin()) << n;
    ASSERT_TRUE(std::equal(v2.begin(), o2, v.begin()));
  }
}

TYPED_TEST(ScanAlgos, RemoveInPlace) {
  auto v = make_ints(20000);
  auto expected = v;
  auto e = std::remove_if(expected.begin(), expected.end(),
                          [](long long x) { return x % 5 == 0; });
  auto o = pstlb::remove_if(this->pol, v.begin(), v.end(),
                            [](long long x) { return x % 5 == 0; });
  ASSERT_EQ(o - v.begin(), e - expected.begin());
  ASSERT_TRUE(std::equal(v.begin(), o, expected.begin()));

  auto v2 = make_ints(20000);
  auto expected2 = v2;
  auto e2 = std::remove(expected2.begin(), expected2.end(), 17LL);
  auto o2 = pstlb::remove(this->pol, v2.begin(), v2.end(), 17LL);
  ASSERT_EQ(o2 - v2.begin(), e2 - expected2.begin());
  ASSERT_TRUE(std::equal(v2.begin(), o2, expected2.begin()));
}

// 2x2 integer matrices under multiplication: associative, emphatically not
// commutative. Entries stay small via mod arithmetic.
struct mat2 {
  std::array<long long, 4> m{1, 0, 0, 1};  // identity
  friend mat2 operator*(const mat2& a, const mat2& b) {
    constexpr long long kMod = 1000003;
    mat2 r;
    r.m = {(a.m[0] * b.m[0] + a.m[1] * b.m[2]) % kMod,
           (a.m[0] * b.m[1] + a.m[1] * b.m[3]) % kMod,
           (a.m[2] * b.m[0] + a.m[3] * b.m[2]) % kMod,
           (a.m[2] * b.m[1] + a.m[3] * b.m[3]) % kMod};
    return r;
  }
  friend bool operator==(const mat2& a, const mat2& b) { return a.m == b.m; }
};

TYPED_TEST(ScanAlgos, InclusiveScanNonCommutativeStrings) {
  // Large enough that the lookback path engages (n >= 2^12) with many
  // chunks; a commutativity violation anywhere scrambles character order.
  const index_t n = 6000;
  std::vector<std::string> v(static_cast<std::size_t>(n));
  for (index_t i = 0; i < n; ++i) {
    v[static_cast<std::size_t>(i)] = std::string(1, static_cast<char>('a' + i % 26));
  }
  std::vector<std::string> out(v.size()), expected(v.size());
  auto concat = [](std::string a, std::string b) { return std::move(a) + b; };
  std::inclusive_scan(v.begin(), v.end(), expected.begin(), concat);
  pstlb::inclusive_scan(this->pol, v.begin(), v.end(), out.begin(), concat);
  ASSERT_EQ(out, expected);
}

TYPED_TEST(ScanAlgos, ScansNonCommutativeMatrixCompose) {
  const index_t n = 20000;
  std::vector<mat2> v(static_cast<std::size_t>(n));
  for (index_t i = 0; i < n; ++i) {
    v[static_cast<std::size_t>(i)].m = {i % 7 + 1, i % 5, i % 3, i % 11 + 1};
  }
  std::vector<mat2> out(v.size()), expected(v.size());
  std::inclusive_scan(v.begin(), v.end(), expected.begin(), std::multiplies<>{});
  pstlb::inclusive_scan(this->pol, v.begin(), v.end(), out.begin(), std::multiplies<>{});
  ASSERT_EQ(out, expected);

  std::exclusive_scan(v.begin(), v.end(), expected.begin(), mat2{}, std::multiplies<>{});
  pstlb::exclusive_scan(this->pol, v.begin(), v.end(), out.begin(), mat2{},
                        std::multiplies<>{});
  ASSERT_EQ(out, expected);
}

TYPED_TEST(ScanAlgos, BothSkeletonsMatchAcrossThreadSweep) {
  // Stress the scan and pack paths while pinning 1..N threads, under both
  // skeleton selections. Covers the "one worker drains every ticket" and
  // "more workers than chunks" ends of the lookback protocol.
  const index_t n = 1 << 16;
  const auto v = make_ints(n);
  std::vector<long long> expected(v.size());
  std::inclusive_scan(v.begin(), v.end(), expected.begin());
  auto pred = [](long long x) { return x % 7 < 3; };
  std::vector<long long> packed_expected(v.size(), -7);
  const auto packed_end =
      std::copy_if(v.begin(), v.end(), packed_expected.begin(), pred);
  for (unsigned threads : {1u, 2u, 3u, 4u, 8u}) {
    for (pstlb::exec::scan_skeleton skeleton :
         {pstlb::exec::scan_skeleton::two_pass,
          pstlb::exec::scan_skeleton::single_pass}) {
      auto swept = pstlb::test::make_eager<TypeParam>(threads);
      swept.scan = skeleton;
      std::vector<long long> out(v.size());
      pstlb::inclusive_scan(swept, v.begin(), v.end(), out.begin());
      ASSERT_EQ(out, expected)
          << "threads=" << threads << " single_pass="
          << (skeleton == pstlb::exec::scan_skeleton::single_pass);
      std::vector<long long> packed(v.size(), -7);
      const auto out_end =
          pstlb::copy_if(swept, v.begin(), v.end(), packed.begin(), pred);
      ASSERT_EQ(out_end - packed.begin(), packed_end - packed_expected.begin());
      ASSERT_EQ(packed, packed_expected) << "threads=" << threads;
    }
  }
}

TEST(ScanCounters, LookbackHalvesInputBytesRead) {
  // The software traffic accounting mirrors what PAPI would see: the
  // two-pass skeleton streams the input from DRAM twice, the single-pass
  // lookback skeleton once.
  const index_t n = 1 << 16;
  const auto v = make_ints(n);
  std::vector<long long> out(v.size());
  auto measure = [&](pstlb::exec::scan_skeleton skeleton) {
    auto pol = pstlb::test::make_eager<pstlb::exec::steal_policy>();
    pol.scan = skeleton;
    pstlb::counters::region r("scan_traffic");
    pstlb::inclusive_scan(pol, v.begin(), v.end(), out.begin());
    return r.stop().bytes_read;
  };
  const double two_pass = measure(pstlb::exec::scan_skeleton::two_pass);
  const double single_pass = measure(pstlb::exec::scan_skeleton::single_pass);
  const double elem_bytes = static_cast<double>(n) * sizeof(long long);
  EXPECT_DOUBLE_EQ(two_pass, 2.0 * elem_bytes);
  EXPECT_DOUBLE_EQ(single_pass, elem_bytes);
}

TEST(ScanPolicyDefaults, NvcOmpProfileStaysTwoPass) {
  // The NVC-OMP-like profile models a backend with no chained scan: it must
  // keep the conservative two-pass skeleton, while every other parallel
  // policy defaults to single-pass lookback (for large enough inputs).
  EXPECT_EQ(pstlb::exec::omp_static_policy{}.scan,
            pstlb::exec::scan_skeleton::two_pass);
  EXPECT_EQ(pstlb::exec::fork_join_policy{}.scan,
            pstlb::exec::scan_skeleton::single_pass);
  EXPECT_EQ(pstlb::exec::steal_policy{}.scan,
            pstlb::exec::scan_skeleton::single_pass);
  EXPECT_EQ(pstlb::exec::task_policy{}.scan,
            pstlb::exec::scan_skeleton::single_pass);
  EXPECT_EQ(pstlb::exec::omp_dynamic_policy{}.scan,
            pstlb::exec::scan_skeleton::single_pass);
  // Tiny inputs always fall back to two-pass machinery.
  pstlb::exec::steal_policy eager = pstlb::test::make_eager<pstlb::exec::steal_policy>();
  EXPECT_FALSE(pstlb::exec::use_lookback_scan(eager, 100));
  EXPECT_TRUE(pstlb::exec::use_lookback_scan(eager, 1 << 16));
}

TEST(ScanProperty, ScanThenAdjacentDifferenceIsIdentity) {
  auto pol = pstlb::test::make_eager<pstlb::exec::steal_policy>();
  const auto v = make_ints(50000);
  std::vector<long long> scanned(v.size()), recovered(v.size());
  pstlb::inclusive_scan(pol, v.begin(), v.end(), scanned.begin());
  pstlb::adjacent_difference(pol, scanned.begin(), scanned.end(), recovered.begin());
  EXPECT_EQ(recovered, v);
}

}  // namespace
