// Set operations on sorted ranges (multiset semantics) vs std::, all
// policies, with duplicate-heavy inputs that stress the value-aligned cuts.
#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "pstlb/pstlb.hpp"
#include "support/policies.hpp"

namespace {

using pstlb::index_t;

// Sorted multiset with long equal runs (i/k) — the adversarial case for
// chunked set operations.
std::vector<int> sorted_multiset(index_t n, int run, int offset) {
  std::vector<int> v(static_cast<std::size_t>(n));
  for (index_t i = 0; i < n; ++i) {
    v[static_cast<std::size_t>(i)] = static_cast<int>(i) / run + offset;
  }
  return v;
}

template <class P>
class SetAlgos : public ::testing::Test {
 protected:
  P pol = pstlb::test::make_eager<P>();
};

TYPED_TEST_SUITE(SetAlgos, PstlbPolicyTypes);

TYPED_TEST(SetAlgos, UnionMatchesStd) {
  for (auto [na, nb] : {std::pair<index_t, index_t>{0, 0}, {0, 100}, {100, 0},
                        {50000, 30000}, {9973, 9973}}) {
    const auto a = sorted_multiset(na, 7, 0);
    const auto b = sorted_multiset(nb, 3, 500);
    std::vector<int> out(a.size() + b.size()), expected(a.size() + b.size());
    auto e = std::set_union(a.begin(), a.end(), b.begin(), b.end(), expected.begin());
    auto o = pstlb::set_union(this->pol, a.begin(), a.end(), b.begin(), b.end(),
                              out.begin());
    ASSERT_EQ(o - out.begin(), e - expected.begin()) << na << "," << nb;
    ASSERT_TRUE(std::equal(out.begin(), o, expected.begin()));
  }
}

TYPED_TEST(SetAlgos, IntersectionMatchesStd) {
  const auto a = sorted_multiset(60000, 5, 0);
  const auto b = sorted_multiset(40000, 2, 3000);
  std::vector<int> out(a.size()), expected(a.size());
  auto e =
      std::set_intersection(a.begin(), a.end(), b.begin(), b.end(), expected.begin());
  auto o = pstlb::set_intersection(this->pol, a.begin(), a.end(), b.begin(), b.end(),
                                   out.begin());
  ASSERT_EQ(o - out.begin(), e - expected.begin());
  ASSERT_TRUE(std::equal(out.begin(), o, expected.begin()));
}

TYPED_TEST(SetAlgos, DifferenceMatchesStd) {
  const auto a = sorted_multiset(60000, 4, 0);
  const auto b = sorted_multiset(30000, 6, 2000);
  std::vector<int> out(a.size()), expected(a.size());
  auto e = std::set_difference(a.begin(), a.end(), b.begin(), b.end(), expected.begin());
  auto o = pstlb::set_difference(this->pol, a.begin(), a.end(), b.begin(), b.end(),
                                 out.begin());
  ASSERT_EQ(o - out.begin(), e - expected.begin());
  ASSERT_TRUE(std::equal(out.begin(), o, expected.begin()));
}

TYPED_TEST(SetAlgos, SymmetricDifferenceMatchesStd) {
  const auto a = sorted_multiset(50000, 3, 0);
  const auto b = sorted_multiset(50000, 5, 1000);
  std::vector<int> out(a.size() + b.size()), expected(a.size() + b.size());
  auto e = std::set_symmetric_difference(a.begin(), a.end(), b.begin(), b.end(),
                                         expected.begin());
  auto o = pstlb::set_symmetric_difference(this->pol, a.begin(), a.end(), b.begin(),
                                           b.end(), out.begin());
  ASSERT_EQ(o - out.begin(), e - expected.begin());
  ASSERT_TRUE(std::equal(out.begin(), o, expected.begin()));
}

TYPED_TEST(SetAlgos, IncludesMultisetSemantics) {
  const auto hay = sorted_multiset(100000, 4, 0);  // each value 4 times
  auto needle = sorted_multiset(20000, 2, 1000);   // each value twice, subset range
  EXPECT_TRUE(
      pstlb::includes(this->pol, hay.begin(), hay.end(), needle.begin(), needle.end()));

  // Five copies of one value cannot be included in four.
  std::vector<int> five(5, 5000);
  EXPECT_FALSE(
      pstlb::includes(this->pol, hay.begin(), hay.end(), five.begin(), five.end()));

  // Empty needle is always included.
  EXPECT_TRUE(
      pstlb::includes(this->pol, hay.begin(), hay.end(), needle.begin(), needle.begin()));

  // Value outside the haystack range.
  std::vector<int> outside{static_cast<int>(100000)};
  EXPECT_EQ(pstlb::includes(this->pol, hay.begin(), hay.end(), outside.begin(),
                            outside.end()),
            std::includes(hay.begin(), hay.end(), outside.begin(), outside.end()));
}

TYPED_TEST(SetAlgos, CustomComparator) {
  auto a = sorted_multiset(30000, 3, 0);
  auto b = sorted_multiset(20000, 2, 500);
  std::reverse(a.begin(), a.end());
  std::reverse(b.begin(), b.end());
  std::vector<int> out(a.size() + b.size()), expected(a.size() + b.size());
  auto e = std::set_union(a.begin(), a.end(), b.begin(), b.end(), expected.begin(),
                          std::greater<>{});
  auto o = pstlb::set_union(this->pol, a.begin(), a.end(), b.begin(), b.end(),
                            out.begin(), std::greater<>{});
  ASSERT_EQ(o - out.begin(), e - expected.begin());
  ASSERT_TRUE(std::equal(out.begin(), o, expected.begin()));
}

}  // namespace
