// Sort-family algorithms: permutation+order properties, stability, merges,
// partitions, order statistics — all policies.
#include <gtest/gtest.h>

#include <algorithm>
#include <numeric>
#include <vector>

#include "pstlb/pstlb.hpp"
#include "support/policies.hpp"

namespace {

using pstlb::index_t;

std::vector<int> make_shuffled(index_t n, unsigned seed = 1) {
  std::vector<int> v(static_cast<std::size_t>(n));
  std::iota(v.begin(), v.end(), 0);
  std::uint64_t state = seed * 0x9E3779B97F4A7C15ull + 1;
  for (index_t i = n - 1; i > 0; --i) {
    state = state * 6364136223846793005ull + 1442695040888963407ull;
    const auto j = static_cast<index_t>((state >> 33) % static_cast<std::uint64_t>(i + 1));
    std::swap(v[static_cast<std::size_t>(i)], v[static_cast<std::size_t>(j)]);
  }
  return v;
}

template <class P>
class SortAlgos : public ::testing::Test {
 protected:
  P pol = pstlb::test::make_eager<P>();
};

TYPED_TEST_SUITE(SortAlgos, PstlbPolicyTypes);

TYPED_TEST(SortAlgos, SortsPermutation) {
  for (index_t n : pstlb::test::test_sizes()) {
    auto v = make_shuffled(n);
    pstlb::sort(this->pol, v.begin(), v.end());
    ASSERT_TRUE(std::is_sorted(v.begin(), v.end())) << "n=" << n;
    // Still the same permutation of 0..n-1.
    for (index_t i = 0; i < n; ++i) {
      ASSERT_EQ(v[static_cast<std::size_t>(i)], static_cast<int>(i)) << "n=" << n;
    }
  }
}

TYPED_TEST(SortAlgos, SortWithComparator) {
  auto v = make_shuffled(100000);
  pstlb::sort(this->pol, v.begin(), v.end(), std::greater<>{});
  EXPECT_TRUE(std::is_sorted(v.begin(), v.end(), std::greater<>{}));
}

TYPED_TEST(SortAlgos, SortWithDuplicates) {
  std::vector<int> v(131071);
  for (std::size_t i = 0; i < v.size(); ++i) { v[i] = static_cast<int>(i % 37); }
  auto expected = v;
  std::sort(expected.begin(), expected.end());
  pstlb::sort(this->pol, v.begin(), v.end());
  EXPECT_EQ(v, expected);
}

TYPED_TEST(SortAlgos, StableSortPreservesEqualOrder) {
  struct item {
    int key;
    int seq;
  };
  std::vector<item> v;
  const auto keys = make_shuffled(60000);
  v.reserve(keys.size());
  for (std::size_t i = 0; i < keys.size(); ++i) {
    v.push_back({keys[i] % 100, static_cast<int>(i)});
  }
  pstlb::stable_sort(this->pol, v.begin(), v.end(),
                     [](const item& a, const item& b) { return a.key < b.key; });
  for (std::size_t i = 1; i < v.size(); ++i) {
    ASSERT_LE(v[i - 1].key, v[i].key);
    if (v[i - 1].key == v[i].key) { ASSERT_LT(v[i - 1].seq, v[i].seq) << i; }
  }
}

TYPED_TEST(SortAlgos, MergeTwoSortedRanges) {
  for (index_t na : {index_t{0}, index_t{1}, index_t{999}, index_t{50000}}) {
    for (index_t nb : {index_t{0}, index_t{1}, index_t{30000}}) {
      std::vector<int> a(static_cast<std::size_t>(na)), b(static_cast<std::size_t>(nb));
      for (index_t i = 0; i < na; ++i) { a[static_cast<std::size_t>(i)] = static_cast<int>(i * 3); }
      for (index_t i = 0; i < nb; ++i) { b[static_cast<std::size_t>(i)] = static_cast<int>(i * 5 + 1); }
      std::vector<int> out(a.size() + b.size()), expected(a.size() + b.size());
      std::merge(a.begin(), a.end(), b.begin(), b.end(), expected.begin());
      auto ret = pstlb::merge(this->pol, a.begin(), a.end(), b.begin(), b.end(),
                              out.begin());
      ASSERT_EQ(ret, out.end()) << na << "," << nb;
      ASSERT_EQ(out, expected) << na << "," << nb;
    }
  }
}

TYPED_TEST(SortAlgos, MergeIsStable) {
  // Equal keys: all of A's must precede B's.
  std::vector<std::pair<int, int>> a, b;
  for (int i = 0; i < 20000; ++i) { a.push_back({i / 4, 0}); }
  for (int i = 0; i < 20000; ++i) { b.push_back({i / 4, 1}); }
  std::vector<std::pair<int, int>> out(a.size() + b.size());
  auto key_less = [](const auto& x, const auto& y) { return x.first < y.first; };
  pstlb::merge(this->pol, a.begin(), a.end(), b.begin(), b.end(), out.begin(), key_less);
  for (std::size_t i = 1; i < out.size(); ++i) {
    ASSERT_LE(out[i - 1].first, out[i].first);
    if (out[i - 1].first == out[i].first) {
      ASSERT_LE(out[i - 1].second, out[i].second) << i;
    }
  }
}

TYPED_TEST(SortAlgos, InplaceMerge) {
  auto v = make_shuffled(80000);
  const auto middle = v.begin() + 35000;
  std::sort(v.begin(), middle);
  std::sort(middle, v.end());
  auto expected = v;
  std::inplace_merge(expected.begin(), expected.begin() + 35000, expected.end());
  pstlb::inplace_merge(this->pol, v.begin(), middle, v.end());
  EXPECT_EQ(v, expected);
}

TYPED_TEST(SortAlgos, StablePartitionKeepsRelativeOrder) {
  auto v = make_shuffled(70000);
  auto expected = v;
  auto pred = [](int x) { return x % 3 == 0; };
  auto e = std::stable_partition(expected.begin(), expected.end(), pred);
  auto o = pstlb::stable_partition(this->pol, v.begin(), v.end(), pred);
  ASSERT_EQ(o - v.begin(), e - expected.begin());
  EXPECT_EQ(v, expected);
}

TYPED_TEST(SortAlgos, PartitionSatisfiesPostcondition) {
  auto v = make_shuffled(50000);
  auto pred = [](int x) { return x < 10000; };
  auto boundary = pstlb::partition(this->pol, v.begin(), v.end(), pred);
  EXPECT_TRUE(std::all_of(v.begin(), boundary, pred));
  EXPECT_TRUE(std::none_of(boundary, v.end(), pred));
  EXPECT_EQ(boundary - v.begin(), 10000);
}

TYPED_TEST(SortAlgos, NthElement) {
  auto v = make_shuffled(60000);
  const auto nth = v.begin() + 12345;
  pstlb::nth_element(this->pol, v.begin(), nth, v.end());
  EXPECT_EQ(*nth, 12345);
  EXPECT_TRUE(std::all_of(v.begin(), nth, [&](int x) { return x <= *nth; }));
  EXPECT_TRUE(std::all_of(nth, v.end(), [&](int x) { return x >= *nth; }));
}

TYPED_TEST(SortAlgos, PartialSort) {
  auto v = make_shuffled(60000);
  pstlb::partial_sort(this->pol, v.begin(), v.begin() + 500, v.end());
  for (int i = 0; i < 500; ++i) { ASSERT_EQ(v[static_cast<std::size_t>(i)], i); }
}

TYPED_TEST(SortAlgos, PartialSortCopy) {
  const auto v = make_shuffled(60000);
  std::vector<int> out(100, -1);
  auto end = pstlb::partial_sort_copy(this->pol, v.begin(), v.end(), out.begin(),
                                      out.end());
  EXPECT_EQ(end, out.end());
  for (int i = 0; i < 100; ++i) { ASSERT_EQ(out[static_cast<std::size_t>(i)], i); }
  // Destination bigger than source: sorts everything.
  std::vector<int> big(70000, -1);
  auto end2 =
      pstlb::partial_sort_copy(this->pol, v.begin(), v.end(), big.begin(), big.end());
  EXPECT_EQ(end2 - big.begin(), 60000);
  EXPECT_TRUE(std::is_sorted(big.begin(), end2));
}

TEST(SortSeqThreshold, SmallInputsTakeSequentialPath) {
  // The GNU-like policy keeps its 2^10 fallback: results must still be right.
  pstlb::exec::fork_join_policy pol{4};  // default seq_threshold = 1024
  auto v = make_shuffled(1000);
  pstlb::sort(pol, v.begin(), v.end());
  EXPECT_TRUE(std::is_sorted(v.begin(), v.end()));
}

}  // namespace
