// Multi-tenant overload tests: many concurrent request threads funneling
// mixed kernels through arena admission on every backend. Checks results
// against sequential references, no deadlock at the cap<=1 floor, graceful
// degradation (not errors) under injected worker-spawn failure, and the
// exactly-one-exception-per-caller contract under fault injection.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <numeric>
#include <thread>
#include <vector>

#include "pstlb/fault.hpp"
#include "pstlb/pstlb.hpp"
#include "sched/arena.hpp"
#include "support/policies.hpp"

namespace {

using pstlb::index_t;
using pstlb::sched::arena;

namespace fault = pstlb::fault;

arena::config arena_cfg(const char* name, unsigned cap,
                        unsigned max_pending = 64, unsigned deadline_ms = 0) {
  arena::config c;
  c.name = name;
  c.cap = cap;
  c.max_pending = max_pending;
  c.deadline_ms = deadline_ms;
  return c;
}

/// One caller's workload: a kernel mix whose expected values are computed
/// sequentially up front. Returns the number of wrong results.
template <class Policy>
int run_mix(Policy policy, unsigned seed) {
  int failures = 0;
  std::vector<long long> v(4096);
  for (std::size_t i = 0; i < v.size(); ++i) {
    v[i] = static_cast<long long>((i * 131 + seed) % 997);
  }
  const long long expected_sum = std::accumulate(v.begin(), v.end(), 0LL);
  if (pstlb::reduce(policy, v.begin(), v.end(), 0LL) != expected_sum) {
    ++failures;
  }

  auto doubled = v;
  pstlb::for_each(policy, doubled.begin(), doubled.end(),
                  [](long long& x) { x *= 2; });
  for (std::size_t i = 0; i < v.size(); ++i) {
    if (doubled[i] != 2 * v[i]) { ++failures; break; }
  }

  std::vector<long long> scanned(v.size());
  pstlb::inclusive_scan(policy, v.begin(), v.end(), scanned.begin());
  if (scanned.back() != expected_sum) { ++failures; }

  auto sorted = v;
  pstlb::sort(policy, sorted.begin(), sorted.end());
  if (!std::is_sorted(sorted.begin(), sorted.end()) ||
      std::accumulate(sorted.begin(), sorted.end(), 0LL) != expected_sum) {
    ++failures;
  }
  return failures;
}

/// Runs `callers` request threads against `a`, every thread bound to the
/// arena, rotating through all five policies. Returns total wrong results.
int hammer(arena& a, unsigned callers, int rounds) {
  std::atomic<int> failures{0};
  std::vector<std::thread> users;
  users.reserve(callers);
  for (unsigned u = 0; u < callers; ++u) {
    users.emplace_back([&a, u, rounds, &failures] {
      arena::scoped_bind bind(&a);
      for (int round = 0; round < rounds; ++round) {
        const unsigned seed = u * 1000 + static_cast<unsigned>(round);
        switch (u % 5) {
          case 0:
            failures += run_mix(pstlb::exec::seq, seed);
            break;
          case 1:
            failures += run_mix(
                pstlb::test::make_eager<pstlb::exec::steal_policy>(), seed);
            break;
          case 2:
            failures += run_mix(
                pstlb::test::make_eager<pstlb::exec::fork_join_policy>(), seed);
            break;
          case 3:
            failures += run_mix(
                pstlb::test::make_eager<pstlb::exec::task_policy>(), seed);
            break;
          default:
            failures += run_mix(
                pstlb::test::make_eager<pstlb::exec::omp_dynamic_policy>(),
                seed);
            break;
        }
      }
    });
  }
  for (auto& user : users) { user.join(); }
  return failures.load();
}

class ArenaStress : public ::testing::Test {
 protected:
  void TearDown() override { fault::set(fault::spec{}); }
};

TEST_F(ArenaStress, SixtyFourCallersAgainstSmallCapStayCorrect) {
  // 64 request threads share an 8-token arena: heavy queueing and grant
  // shrinking, but every result must still match the sequential reference
  // and nobody may deadlock.
  arena a(arena_cfg("stress8", 8, /*max_pending=*/128));
  EXPECT_EQ(hammer(a, 64, 2), 0);
  const auto s = a.snapshot();
  EXPECT_GT(s.admitted, 0u);
  EXPECT_EQ(s.admitted, s.completed);
  EXPECT_EQ(s.watchdog_fires, 0u);
}

TEST_F(ArenaStress, CapOfOneDegradesEveryCallWithoutDeadlock) {
  arena a(arena_cfg("cap1", 1));
  EXPECT_EQ(hammer(a, 16, 2), 0);
  const auto s = a.snapshot();
  EXPECT_EQ(s.admitted, 0u);          // nothing ran parallel
  EXPECT_GT(s.sequential_cap, 0u);    // the cap policy degraded them all
}

TEST_F(ArenaStress, SaturationShedsToSequentialNotError) {
  // Queue bound 1 with a slow token-release pattern: most callers shed.
  arena a(arena_cfg("tiny", 2, /*max_pending=*/1));
  EXPECT_EQ(hammer(a, 16, 2), 0);
  const auto s = a.snapshot();
  EXPECT_GT(s.shed_saturated + s.admitted + s.sequential_cap, 0u);
  EXPECT_EQ(s.admitted, s.completed);
}

TEST_F(ArenaStress, DeadlineBoundsAdmissionWait) {
  arena a(arena_cfg("deadline", 2, /*max_pending=*/64, /*deadline_ms=*/1));
  EXPECT_EQ(hammer(a, 16, 2), 0);
  EXPECT_EQ(a.snapshot().admitted, a.snapshot().completed);
}

TEST_F(ArenaStress, SpawnFailureShedsGracefullyWithObservableCounter) {
  // An oversized grant forces pool growth; with PSTLB_FAULT=spawnfail every
  // growth attempt fails, so each parallel leg must shed to sequential —
  // correct results, no exception, and a visible shed counter.
  arena a(arena_cfg("spawn", 4096, /*max_pending=*/64));
  fault::set("spawnfail");
  std::atomic<int> failures{0};
  std::vector<std::thread> users;
  for (unsigned u = 0; u < 8; ++u) {
    users.emplace_back([&a, u, &failures] {
      arena::scoped_bind bind(&a);
      pstlb::exec::steal_policy steal{512};
      steal.seq_threshold = 0;
      failures += run_mix(steal, u);
      pstlb::exec::fork_join_policy fork{512};
      fork.seq_threshold = 0;
      failures += run_mix(fork, u);
    });
  }
  for (auto& user : users) { user.join(); }
  fault::set(fault::spec{});
  EXPECT_EQ(failures.load(), 0);
  EXPECT_GT(a.snapshot().shed_spawnfail, 0u);
}

TEST_F(ArenaStress, SortOomFallsThroughTheWholeDegradationLadder) {
  // oom:1 makes every hooked scratch allocation throw: samplesort's scatter
  // buffer fails -> mergesort's merge buffer fails -> sequential whole-array
  // sort. The call must still produce a sorted result, throw nothing, and
  // count the sheds.
  arena a(arena_cfg("oom", 8));
  fault::set("oom:1");
  arena::scoped_bind bind(&a);
  auto policy = pstlb::test::make_eager<pstlb::exec::steal_policy>();
  policy.sample_sort_min = 0;  // force the samplesort leg first
  std::vector<long long> v(1 << 15);
  for (std::size_t i = 0; i < v.size(); ++i) {
    v[i] = static_cast<long long>((i * 2654435761u) % 100000);
  }
  auto stable = v;
  EXPECT_NO_THROW(pstlb::sort(policy, v.begin(), v.end()));
  EXPECT_TRUE(std::is_sorted(v.begin(), v.end()));
  EXPECT_NO_THROW(pstlb::stable_sort(policy, stable.begin(), stable.end()));
  EXPECT_TRUE(std::is_sorted(stable.begin(), stable.end()));
  fault::set(fault::spec{});
  EXPECT_GT(a.snapshot().shed_oom, 0u);
}

TEST_F(ArenaStress, ExactlyOneExceptionPerCallerUnderFault) {
  // throw:1 makes the first executed chunk of every region throw. Each
  // caller must see exactly one exception per algorithm call (first-wins
  // capture, duplicates drained), process intact.
  arena a(arena_cfg("faulty", 8, /*max_pending=*/128));
  fault::set("throw:1");
  std::atomic<int> wrong{0};
  std::vector<std::thread> users;
  for (unsigned u = 0; u < 16; ++u) {
    users.emplace_back([&a, u, &wrong] {
      arena::scoped_bind bind(&a);
      std::vector<long long> v(4096, static_cast<long long>(u));
      for (int round = 0; round < 3; ++round) {
        int seen = 0;
        try {
          auto policy = pstlb::test::make_eager<pstlb::exec::steal_policy>();
          pstlb::for_each(policy, v.begin(), v.end(), [](long long& x) { ++x; });
        } catch (const fault::injected_fault&) {
          ++seen;
        }
        if (seen != 1) { wrong.fetch_add(1); }
      }
    });
  }
  for (auto& user : users) { user.join(); }
  fault::set(fault::spec{});
  EXPECT_EQ(wrong.load(), 0);
}

TEST_F(ArenaStress, DefaultArenaCoversUnboundCallers) {
  // No explicit binding: dispatch admits against the process default arena.
  const auto before = arena::default_arena().snapshot();
  auto policy = pstlb::test::make_eager<pstlb::exec::steal_policy>();
  std::vector<long long> v(1 << 15);
  std::iota(v.begin(), v.end(), 0);
  const long long expected = std::accumulate(v.begin(), v.end(), 0LL);
  EXPECT_EQ(pstlb::reduce(policy, v.begin(), v.end(), 0LL), expected);
  const auto after = arena::default_arena().snapshot();
  EXPECT_GT(after.admitted + after.sequential_cap,
            before.admitted + before.sequential_cap);
}

}  // namespace
