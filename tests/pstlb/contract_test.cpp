// Contract and failure-injection tests: precondition violations must abort
// loudly (PSTLB_EXPECTS), and exceptions propagate to the caller on the
// sequential AND parallel paths (TBB task_group_context semantics — exactly
// one exception per region; see sched/cancel.hpp and exception_safety_test).
#include <gtest/gtest.h>

#include <stdexcept>
#include <vector>

#include "backends/backend_registry.hpp"
#include "pstlb/pstlb.hpp"
#include "sim/run.hpp"

namespace {

using pstlb::index_t;

TEST(ContractDeath, UnknownBackendNameAborts) {
  EXPECT_DEATH(pstlb::backends::parse_backend("not-a-backend"), "precondition");
}

TEST(ContractDeath, UnknownMachineNameAborts) {
  EXPECT_DEATH(pstlb::sim::machines::by_name("Mach Z"), "precondition");
}

TEST(ContractDeath, UnknownKernelNameAborts) {
  EXPECT_DEATH(pstlb::sim::parse_kernel("frobnicate"), "precondition");
}

TEST(ContractDeath, UnknownProfileNameAborts) {
  EXPECT_DEATH(pstlb::sim::profiles::by_name("MSVC-PPL"), "precondition");
}

TEST(ContractDeath, SimulateCpuRequiresMachineAndProfile) {
  pstlb::sim::engine_config config;  // null machine/profile
  EXPECT_DEATH(pstlb::sim::simulate_cpu(config), "precondition");
}

TEST(Exceptions, SeqPathPropagates) {
  std::vector<int> v(100, 1);
  bool caught = false;
  try {
    pstlb::for_each(pstlb::exec::seq, v.begin(), v.end(), [](int& x) {
      if (x == 1) { throw std::runtime_error("boom"); }
    });
  } catch (const std::runtime_error&) {
    caught = true;
  }
  EXPECT_TRUE(caught);
}

TEST(Exceptions, SmallInputFallbackPropagates) {
  // Below seq_threshold the parallel policy runs sequentially on the caller
  // thread, so exceptions surface normally.
  pstlb::exec::fork_join_policy pol{4};  // seq_threshold = 1024
  std::vector<int> v(100, 1);
  bool caught = false;
  try {
    pstlb::for_each(pol, v.begin(), v.end(), [](int&) {
      throw std::runtime_error("boom");
    });
  } catch (const std::runtime_error&) {
    caught = true;
  }
  EXPECT_TRUE(caught);
}

TEST(ContractDeath, ParallelPathExceptionPropagates) {
  // Stronger than std::execution::par (which terminates): an exception from
  // a worker chunk is captured by the region's cancel_source — first one
  // wins, the rest of the loop drains — and rethrown here.
  pstlb::exec::steal_policy pol{4};
  pol.seq_threshold = 0;
  std::vector<int> v(100000, 1);
  EXPECT_THROW(pstlb::for_each(pol, v.begin(), v.end(),
                               [](int& x) {
                                 if (x == 1) { throw std::runtime_error("boom"); }
                               }),
               std::runtime_error);
}

}  // namespace
