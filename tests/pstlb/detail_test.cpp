// Unit tests for the internal machinery: merge-path splitting, value-aligned
// set chunking, the counting output iterator, chunk tables, and the dispatch
// rules of exec::dispatch.
#include <gtest/gtest.h>

#include <algorithm>
#include <numeric>
#include <vector>

#include "backends/seq.hpp"
#include "backends/skeletons.hpp"
#include "pstlb/algo_set.hpp"
#include "pstlb/detail/merge.hpp"
#include "pstlb/pstlb.hpp"

namespace {

using pstlb::index_t;

// --- merge_path_split --------------------------------------------------------

TEST(MergePath, SplitsSimpleMerge) {
  const std::vector<int> a{1, 3, 5, 7};
  const std::vector<int> b{2, 4, 6, 8};
  // After d merged outputs, i elements came from a.
  // merged: 1 2 3 4 5 6 7 8 -> prefix from a: 1,1,2,2,3,3,4,4
  const index_t expected[]{0, 1, 1, 2, 2, 3, 3, 4, 4};
  for (index_t d = 0; d <= 8; ++d) {
    EXPECT_EQ(pstlb::detail::merge_path_split(a.begin(), 4, b.begin(), 4, d,
                                              std::less<>{}),
              expected[d])
        << "d=" << d;
  }
}

TEST(MergePath, TiesTakeFromAFirst) {
  const std::vector<int> a{5, 5};
  const std::vector<int> b{5, 5};
  // Stable merge: a's fives precede b's.
  EXPECT_EQ(pstlb::detail::merge_path_split(a.begin(), 2, b.begin(), 2, 1,
                                            std::less<>{}),
            1);
  EXPECT_EQ(pstlb::detail::merge_path_split(a.begin(), 2, b.begin(), 2, 2,
                                            std::less<>{}),
            2);
  EXPECT_EQ(pstlb::detail::merge_path_split(a.begin(), 2, b.begin(), 2, 3,
                                            std::less<>{}),
            2);
}

TEST(MergePath, EmptySides) {
  const std::vector<int> a{1, 2, 3};
  const std::vector<int> b{};
  EXPECT_EQ(pstlb::detail::merge_path_split(a.begin(), 3, b.begin(), 0, 2,
                                            std::less<>{}),
            2);
  EXPECT_EQ(pstlb::detail::merge_path_split(b.begin(), 0, a.begin(), 3, 2,
                                            std::less<>{}),
            0);
}

TEST(MergeParts, CoverExactlyOnceAndInOrder) {
  std::vector<int> a(1000);
  std::vector<int> b(1700);
  for (std::size_t i = 0; i < a.size(); ++i) { a[i] = static_cast<int>(3 * i); }
  for (std::size_t i = 0; i < b.size(); ++i) { b[i] = static_cast<int>(2 * i + 1); }
  const auto parts =
      pstlb::detail::make_merge_parts(a.begin(), 1000, b.begin(), 1700, 7,
                                      std::less<>{});
  index_t prev_a = 0;
  index_t prev_b = 0;
  for (const auto& part : parts) {
    EXPECT_EQ(part.a0, prev_a);
    EXPECT_EQ(part.b0, prev_b);
    EXPECT_LE(part.a0, part.a1);
    EXPECT_LE(part.b0, part.b1);
    prev_a = part.a1;
    prev_b = part.b1;
  }
  EXPECT_EQ(prev_a, 1000);
  EXPECT_EQ(prev_b, 1700);

  // Merging the parts independently reproduces std::merge.
  std::vector<int> out(2700), expected(2700);
  std::merge(a.begin(), a.end(), b.begin(), b.end(), expected.begin());
  for (const auto& part : parts) {
    std::merge(a.begin() + part.a0, a.begin() + part.a1, b.begin() + part.b0,
               b.begin() + part.b1, out.begin() + part.a0 + part.b0);
  }
  EXPECT_EQ(out, expected);
}

// --- multiway merge -----------------------------------------------------------

TEST(MultiwayMerge, KwaySequentialMatchesRepeatedStdMerge) {
  std::vector<std::vector<int>> runs_data;
  for (int r = 0; r < 5; ++r) {
    std::vector<int> run;
    for (int i = 0; i < 300 + r * 37; ++i) { run.push_back(i * (r + 2) % 777); }
    std::sort(run.begin(), run.end());
    runs_data.push_back(std::move(run));
  }
  std::vector<pstlb::detail::run_ref<std::vector<int>::iterator>> runs;
  std::vector<int> expected;
  for (auto& run : runs_data) {
    runs.push_back({run.begin(), run.end()});
    expected.insert(expected.end(), run.begin(), run.end());
  }
  std::sort(expected.begin(), expected.end());
  std::vector<int> out(expected.size());
  pstlb::detail::kway_merge_segments(runs, out.begin(), std::less<>{});
  EXPECT_EQ(out, expected);
}

TEST(MultiwayMerge, ParallelMatchesSortAndIsStable) {
  // Stability across runs: equal keys keep run order; within a run, order.
  struct keyed {
    int key;
    int run;
    int pos;
  };
  std::vector<std::vector<keyed>> runs_data;
  for (int r = 0; r < 6; ++r) {
    std::vector<keyed> run;
    for (int i = 0; i < 5000; ++i) { run.push_back({(i * 13 + r) % 50, r, i}); }
    std::stable_sort(run.begin(), run.end(),
                     [](const keyed& a, const keyed& b) { return a.key < b.key; });
    runs_data.push_back(std::move(run));
  }
  std::vector<pstlb::detail::run_ref<std::vector<keyed>::iterator>> runs;
  std::size_t total = 0;
  for (auto& run : runs_data) {
    runs.push_back({run.begin(), run.end()});
    total += run.size();
  }
  std::vector<keyed> out(total);
  pstlb::backends::steal_backend be(4);
  pstlb::detail::parallel_multiway_merge(
      be, runs, out.begin(),
      [](const keyed& a, const keyed& b) { return a.key < b.key; });
  for (std::size_t i = 1; i < out.size(); ++i) {
    ASSERT_LE(out[i - 1].key, out[i].key) << i;
    if (out[i - 1].key == out[i].key) {
      // stability: (run, pos) lexicographic within equal keys
      ASSERT_LE(out[i - 1].run, out[i].run) << i;
      if (out[i - 1].run == out[i].run) { ASSERT_LT(out[i - 1].pos, out[i].pos); }
    }
  }
}

TEST(MultiwaySort, ForkJoinPolicyUsesMultiwayAndSortsCorrectly) {
  // fork_join_policy defaults to multiway_sort=true (the GNU model); verify
  // end-to-end and compare against the binary-merge path.
  pstlb::exec::fork_join_policy multiway{4};
  multiway.seq_threshold = 0;
  EXPECT_TRUE(multiway.multiway_sort);
  pstlb::exec::steal_policy binary{4};
  binary.seq_threshold = 0;
  EXPECT_FALSE(binary.multiway_sort);

  for (index_t n : {index_t{100}, index_t{65536}, index_t{100003}}) {
    std::vector<long long> v1(static_cast<std::size_t>(n));
    for (index_t i = 0; i < n; ++i) {
      v1[static_cast<std::size_t>(i)] = (i * 2654435761LL) % 10007;
    }
    auto v2 = v1;
    auto expected = v1;
    std::sort(expected.begin(), expected.end());
    pstlb::sort(multiway, v1.begin(), v1.end());
    pstlb::sort(binary, v2.begin(), v2.end());
    ASSERT_EQ(v1, expected) << n;
    ASSERT_EQ(v2, expected) << n;
  }
}

// --- set chunking -----------------------------------------------------------

TEST(SetChunks, NeverSplitEqualRuns) {
  // Long equal runs: every copy of a value must land in exactly one chunk.
  std::vector<int> a(3000);
  std::vector<int> b(2000);
  for (std::size_t i = 0; i < a.size(); ++i) { a[i] = static_cast<int>(i / 100); }
  for (std::size_t i = 0; i < b.size(); ++i) { b[i] = static_cast<int>(i / 50); }
  const auto chunks =
      pstlb::detail::make_set_chunks(a.begin(), 3000, b.begin(), 2000, 16,
                                     std::less<>{});
  index_t prev_a = 0;
  index_t prev_b = 0;
  for (const auto& chunk : chunks) {
    EXPECT_EQ(chunk.a0, prev_a);
    EXPECT_EQ(chunk.b0, prev_b);
    if (chunk.a1 < 3000 && chunk.a1 > 0) {
      // Boundary is the first occurrence of its value.
      EXPECT_NE(a[static_cast<std::size_t>(chunk.a1)],
                a[static_cast<std::size_t>(chunk.a1) - 1]);
    }
    prev_a = chunk.a1;
    prev_b = chunk.b1;
  }
  EXPECT_EQ(prev_a, 3000);
  EXPECT_EQ(prev_b, 2000);
}

TEST(CountingOutputIterator, CountsAssignments) {
  pstlb::detail::counting_output_iterator it;
  const std::vector<int> a{1, 3, 5};
  const std::vector<int> b{2, 3, 4};
  auto end = std::set_union(a.begin(), a.end(), b.begin(), b.end(), it);
  EXPECT_EQ(end.count(), 5);  // 1 2 3 4 5
}

// --- chunk_table ---------------------------------------------------------------

TEST(ChunkTable, CoversRangeWithFixedBounds) {
  for (index_t n : {index_t{1}, index_t{100}, index_t{4096}, index_t{100000}}) {
    const pstlb::backends::chunk_table table(n, 4);
    index_t covered = 0;
    for (index_t c = 0; c < table.count; ++c) {
      index_t b = 0;
      index_t e = 0;
      table.bounds(c, b, e);
      EXPECT_EQ(b, covered);
      EXPECT_LT(b, e);
      covered = e;
    }
    EXPECT_EQ(covered, n);
  }
}

TEST(ChunkTable, RespectsMinChunk) {
  const pstlb::backends::chunk_table table(1000, 64, 256);
  EXPECT_LE(table.count, pstlb::ceil_div(1000, 256));
}

// --- dispatch rules ---------------------------------------------------------------

TEST(Dispatch, SeqPolicyAlwaysSequential) {
  bool par_ran = false;
  pstlb::exec::dispatch<double*>(
      pstlb::exec::seq, 1 << 20, [] {}, [&](auto, index_t) { par_ran = true; });
  EXPECT_FALSE(par_ran);
}

TEST(Dispatch, ThresholdGovernsPath) {
  pstlb::exec::steal_policy pol{4};
  pol.seq_threshold = 1000;
  bool par_ran = false;
  pstlb::exec::dispatch<double*>(
      pol, 999, [] {}, [&](auto, index_t) { par_ran = true; });
  EXPECT_FALSE(par_ran);
  pstlb::exec::dispatch<double*>(
      pol, 1000, [] {}, [&](auto, index_t) { par_ran = true; });
  EXPECT_TRUE(par_ran);
}

TEST(Dispatch, SingleThreadPolicyStaysSequential) {
  pstlb::exec::steal_policy pol{1};
  pol.seq_threshold = 0;
  bool par_ran = false;
  pstlb::exec::dispatch<double*>(
      pol, 1 << 20, [] {}, [&](auto, index_t) { par_ran = true; });
  EXPECT_FALSE(par_ran);
}

TEST(Dispatch, ExplicitGrainIsForwarded) {
  pstlb::exec::steal_policy pol{4};
  pol.seq_threshold = 0;
  pol.grain = 12345;
  index_t seen = 0;
  pstlb::exec::dispatch<double*>(
      pol, 1 << 20, [] {}, [&](auto, index_t grain) { seen = grain; });
  EXPECT_EQ(seen, 12345);
}

TEST(Dispatch, AutoGrainIsPositiveAndBounded) {
  pstlb::exec::steal_policy pol{4};
  pol.seq_threshold = 0;
  index_t seen = 0;
  pstlb::exec::dispatch<double*>(
      pol, 100000, [] {}, [&](auto, index_t grain) { seen = grain; });
  EXPECT_GT(seen, 0);
  EXPECT_LE(seen, 100000);
}

TEST(Dispatch, NestedRegionFallsBackToSeq) {
  pstlb::exec::steal_policy pol{4};
  pol.seq_threshold = 0;
  bool inner_par = false;
  auto backend = pstlb::exec::policy_traits<pstlb::exec::steal_policy>::make(pol);
  pstlb::backends::parallel_for(backend, index_t{4}, index_t{1},
                                [&](index_t, index_t, unsigned) {
                                  pstlb::exec::dispatch<double*>(
                                      pol, 1 << 20, [] {},
                                      [&](auto, index_t) { inner_par = true; });
                                });
  EXPECT_FALSE(inner_par);
}

}  // namespace
