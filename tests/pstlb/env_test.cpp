// The PSTLB_* environment registry: accessor semantics and the
// unknown-variable (typo) detector.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdlib>
#include <string>
#include <vector>

#include "pstlb/env.hpp"

namespace pstlb::env {
namespace {

class EnvVar {
 public:
  EnvVar(const char* name, const char* value) : name_(name) {
    ::setenv(name, value, 1);
  }
  ~EnvVar() { ::unsetenv(name_); }

 private:
  const char* name_;
};

TEST(EnvAccessors, UnsignedOr) {
  EXPECT_EQ(unsigned_or("PSTLB_TEST_UNSET_12345", 7u), 7u);
  {
    EnvVar v("PSTLB_TEST_U", "42");
    EXPECT_EQ(unsigned_or("PSTLB_TEST_U", 7u), 42u);
  }
  {
    EnvVar v("PSTLB_TEST_U", "");
    EXPECT_EQ(unsigned_or("PSTLB_TEST_U", 7u), 7u);
  }
  {
    EnvVar v("PSTLB_TEST_U", "banana");
    EXPECT_EQ(unsigned_or("PSTLB_TEST_U", 7u), 7u);
  }
}

TEST(EnvAccessors, Truthy) {
  EXPECT_FALSE(truthy("PSTLB_TEST_UNSET_12345"));
  {
    EnvVar v("PSTLB_TEST_T", "1");
    EXPECT_TRUE(truthy("PSTLB_TEST_T"));
  }
  {
    EnvVar v("PSTLB_TEST_T", "0");
    EXPECT_FALSE(truthy("PSTLB_TEST_T"));
  }
  {
    EnvVar v("PSTLB_TEST_T", "");
    EXPECT_FALSE(truthy("PSTLB_TEST_T"));
  }
}

TEST(EnvAccessors, StringOr) {
  EXPECT_EQ(string_or("PSTLB_TEST_UNSET_12345", "dflt"), "dflt");
  {
    EnvVar v("PSTLB_TEST_S", "trace.json");
    EXPECT_EQ(string_or("PSTLB_TEST_S", "dflt"), "trace.json");
  }
  {
    EnvVar v("PSTLB_TEST_S", "");
    EXPECT_EQ(string_or("PSTLB_TEST_S", "dflt"), "dflt");
  }
}

TEST(KnownVars, SortedAndCoversTheDocumentedKnobs) {
  const auto& vars = known_vars();
  EXPECT_TRUE(std::is_sorted(vars.begin(), vars.end()));
  for (const char* expected :
       {"PSTLB_COUNTERS", "PSTLB_COUNTER_SAMPLE_MS", "PSTLB_CSV",
        "PSTLB_TRACE", "PSTLB_TRACE_FILE", "PSTLB_TRACE_RING",
        "PSTLB_SCAN_CHUNK", "PSTLB_SCAN_OVERSUB"}) {
    EXPECT_NE(std::find(vars.begin(), vars.end(), expected), vars.end())
        << expected << " missing from known_vars()";
  }
}

TEST(CheckNames, KnownVariablesPass) {
  const auto unknown =
      check_names({"PSTLB_TRACE", "PSTLB_COUNTERS", "PSTLB_SCAN_CHUNK"});
  EXPECT_TRUE(unknown.empty());
}

TEST(CheckNames, NonPstlbNamesAreIgnored) {
  const auto unknown =
      check_names({"PATH", "HOME", "OMP_NUM_THREADS", "PSTL_NUM_THREADS"});
  EXPECT_TRUE(unknown.empty());
}

TEST(CheckNames, TypoGetsANearestMatchSuggestion) {
  const auto unknown = check_names({"PSTLB_TRCE"});
  ASSERT_EQ(unknown.size(), 1u);
  EXPECT_EQ(unknown[0].name, "PSTLB_TRCE");
  EXPECT_EQ(unknown[0].suggestion, "PSTLB_TRACE");
}

TEST(CheckNames, CaseSlipStillSuggests) {
  const auto unknown = check_names({"PSTLB_Counters"});
  ASSERT_EQ(unknown.size(), 1u);
  EXPECT_EQ(unknown[0].suggestion, "PSTLB_COUNTERS");
}

TEST(CheckNames, FarFromEverythingGetsNoSuggestion) {
  const auto unknown = check_names({"PSTLB_ZZZZZZZZZZ"});
  ASSERT_EQ(unknown.size(), 1u);
  EXPECT_TRUE(unknown[0].suggestion.empty());
}

TEST(CheckNames, MixedListFlagsOnlyTheUnknowns) {
  const auto unknown = check_names(
      {"PSTLB_TRACE", "PSTLB_COUNTER", "HOME", "PSTLB_CSV", "PSTLB_TRACE_FIL"});
  ASSERT_EQ(unknown.size(), 2u);
  EXPECT_EQ(unknown[0].name, "PSTLB_COUNTER");
  EXPECT_EQ(unknown[0].suggestion, "PSTLB_COUNTERS");
  EXPECT_EQ(unknown[1].name, "PSTLB_TRACE_FIL");
  EXPECT_EQ(unknown[1].suggestion, "PSTLB_TRACE_FILE");
}

}  // namespace
}  // namespace pstlb::env
