// Exception-propagation contract of the fault-tolerance layer: a throwing
// user functor on any backend delivers exactly one exception to the caller
// (TBB task_group_context semantics), never deadlocks, never terminates, and
// leaves containers valid-but-unspecified and the pools reusable.
//
// The scan cases force the single-pass decoupled-lookback skeleton with tiny
// chunks (PSTLB_SCAN_CHUNK=64), so exceptions land mid-lookback and the
// poisoned-descriptor protocol is what keeps the spinning peers alive. This
// whole file runs under TSan in CI.
#include <gtest/gtest.h>

#include <cstdlib>
#include <numeric>
#include <stdexcept>
#include <vector>

#include "pstlb/pstlb.hpp"
#include "support/policies.hpp"

namespace {

using pstlb::index_t;

struct user_error : std::runtime_error {
  user_error() : std::runtime_error("user functor failure") {}
};

/// Deterministic "random" chunk positions: different trial -> different
/// throwing element, covering first/middle/last chunks across trials.
index_t throw_position(index_t n, int trial) {
  const std::uint64_t h =
      (static_cast<std::uint64_t>(trial) + 1) * 0x9E3779B97F4A7C15ull;
  return static_cast<index_t>(h % static_cast<std::uint64_t>(n));
}

template <class Policy>
class ExceptionSafety : public ::testing::Test {};

TYPED_TEST_SUITE(ExceptionSafety, PstlbPolicyTypes);

TYPED_TEST(ExceptionSafety, ForEachDeliversExactlyOneException) {
  auto policy = pstlb::test::make_eager<TypeParam>();
  std::vector<long long> v(20000, 1);
  for (int trial = 0; trial < 8; ++trial) {
    const index_t bad = throw_position(static_cast<index_t>(v.size()), trial);
    int caught = 0;
    try {
      pstlb::for_each(policy, v.begin(), v.end(), [&](long long& x) {
        if (&x - v.data() == bad) { throw user_error(); }
        x += 1;
      });
    } catch (const user_error&) {
      ++caught;
    }
    // Exactly one exception per launch, and it is the user's type.
    EXPECT_EQ(caught, 1) << "trial " << trial;
    // Valid-but-unspecified: the container is still fully readable.
    EXPECT_EQ(v.size(), 20000u);
  }
  // The pool survived every failed region and still runs clean work.
  std::vector<long long> w(4096, 2);
  EXPECT_EQ(pstlb::reduce(policy, w.begin(), w.end(), 0LL), 8192);
}

TYPED_TEST(ExceptionSafety, EveryChunkThrowingStillDeliversOne) {
  // All chunks throw concurrently: the single-winner capture must drop all
  // but one, and the barrier must still be met on every backend.
  auto policy = pstlb::test::make_eager<TypeParam>();
  std::vector<int> v(8192, 0);
  int caught = 0;
  try {
    pstlb::for_each(policy, v.begin(), v.end(),
                    [](int&) { throw user_error(); });
  } catch (const user_error&) {
    ++caught;
  }
  EXPECT_EQ(caught, 1);
}

TYPED_TEST(ExceptionSafety, ReduceOperatorThrowPropagates) {
  auto policy = pstlb::test::make_eager<TypeParam>();
  std::vector<long long> v(16384, 1);
  EXPECT_THROW(
      (void)pstlb::reduce(policy, v.begin(), v.end(), 0LL,
                          [](long long a, long long b) -> long long {
                            if (a + b > 700) { throw user_error(); }
                            return a + b;
                          }),
      user_error);
  EXPECT_EQ(pstlb::reduce(policy, v.begin(), v.end(), 0LL), 16384);
}

TYPED_TEST(ExceptionSafety, TransformThrowLeavesOutputValid) {
  auto policy = pstlb::test::make_eager<TypeParam>();
  std::vector<int> in(20000);
  std::iota(in.begin(), in.end(), 0);
  std::vector<int> out(in.size(), -1);
  for (int trial = 0; trial < 4; ++trial) {
    const index_t bad = throw_position(static_cast<index_t>(in.size()), trial);
    EXPECT_THROW(pstlb::transform(policy, in.begin(), in.end(), out.begin(),
                                  [&](const int& x) -> int {
                                    if (&x - in.data() == bad) {
                                      throw user_error();
                                    }
                                    return x * 2;
                                  }),
                 user_error);
    EXPECT_EQ(out.size(), in.size());  // valid, contents unspecified
  }
}

TYPED_TEST(ExceptionSafety, ScanCombineThrowMidLookback) {
  // Tiny chunks force deep lookback chains (~2^14 / 64 = 256 descriptors);
  // an element-level throw then lands while peers are actively spinning on
  // predecessor descriptors. The poisoned-descriptor protocol must unblock
  // every one of them or this test hangs.
  ::setenv("PSTLB_SCAN_CHUNK", "64", 1);
  auto policy = pstlb::test::make_eager<TypeParam>();
  const index_t n = index_t{1} << 14;  // >= lookback_min_elements
  std::vector<long long> in(static_cast<std::size_t>(n), 1);
  std::vector<long long> out(in.size(), 0);
  for (int trial = 0; trial < 4; ++trial) {
    const index_t bad = throw_position(n, trial);
    int caught = 0;
    try {
      pstlb::inclusive_scan(policy, in.begin(), in.end(), out.begin(),
                            [&](long long a, long long b) -> long long {
                              if (a + b == bad + 1) { throw user_error(); }
                              return a + b;
                            });
    } catch (const user_error&) {
      ++caught;
    }
    if (bad == 0) { continue; }  // prefix `bad + 1` may never be formed
    EXPECT_EQ(caught, 1) << "trial " << trial;
  }
  ::unsetenv("PSTLB_SCAN_CHUNK");
  // Scan still produces correct output after the failed launches.
  pstlb::inclusive_scan(policy, in.begin(), in.end(), out.begin());
  EXPECT_EQ(out.back(), static_cast<long long>(n));
}

TYPED_TEST(ExceptionSafety, RepeatedFailuresDoNotExhaustPools) {
  // 50 consecutive failed regions: leaked job state, stuck epochs, or
  // un-reset cancel tokens would wedge one of these launches.
  auto policy = pstlb::test::make_eager<TypeParam>();
  std::vector<int> v(4096, 1);
  for (int round = 0; round < 50; ++round) {
    EXPECT_THROW(pstlb::for_each(policy, v.begin(), v.end(),
                                 [](int&) { throw user_error(); }),
                 user_error);
  }
  EXPECT_EQ(pstlb::reduce(policy, v.begin(), v.end(), 0), 4096);
}

}  // namespace
