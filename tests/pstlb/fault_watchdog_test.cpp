// Fault-injection and hang-watchdog coverage: injected stalls must trip the
// watchdog within its contract (detection + cooperative cancellation inside
// 2x PSTLB_WATCHDOG_MS, diagnostics naming the stalled worker), injected
// allocation failures must propagate cleanly out of the NUMA allocators, and
// the PSTLB_FAULT grammar must reject garbage.
#include <gtest/gtest.h>

#include <chrono>
#include <new>
#include <vector>

#include "numa/first_touch_allocator.hpp"
#include "pstlb/fault.hpp"
#include "pstlb/pstlb.hpp"
#include "sched/watchdog.hpp"
#include "support/policies.hpp"

namespace {

using pstlb::index_t;
namespace fault = pstlb::fault;
namespace watchdog = pstlb::sched::watchdog;

/// Every test disarms injection and the watchdog on exit, pass or fail —
/// leaked global state here would poison the rest of the suite.
class FaultWatchdog : public ::testing::Test {
 protected:
  void TearDown() override {
    fault::set(fault::spec{});
    watchdog::set_timeout_ms(0);
  }
};

TEST_F(FaultWatchdog, ParseAcceptsTheDocumentedGrammar) {
  EXPECT_EQ(fault::parse("throw:0.25").mode, fault::kind::throw_);
  EXPECT_DOUBLE_EQ(fault::parse("throw:0.25").probability, 0.25);
  EXPECT_EQ(fault::parse("oom:1").mode, fault::kind::oom);
  EXPECT_EQ(fault::parse("stall:200").mode, fault::kind::stall);
  EXPECT_EQ(fault::parse("stall:200").stall_ms, 200u);
  EXPECT_EQ(fault::parse("spawnfail").mode, fault::kind::spawnfail);
  EXPECT_EQ(fault::parse("throw:0.5", 42).seed, 42u);
}

TEST_F(FaultWatchdog, ParseRejectsGarbageAsNone) {
  EXPECT_EQ(fault::parse("").mode, fault::kind::none);
  EXPECT_EQ(fault::parse("bogus").mode, fault::kind::none);
  EXPECT_EQ(fault::parse("throw:").mode, fault::kind::none);
  EXPECT_EQ(fault::parse("throw:-0.5").mode, fault::kind::none);
  EXPECT_EQ(fault::parse("stall:0").mode, fault::kind::none);
  EXPECT_EQ(fault::parse("stall:abc").mode, fault::kind::none);
  EXPECT_EQ(fault::parse("oom").mode, fault::kind::none);
}

TEST_F(FaultWatchdog, InjectedThrowPropagatesAsInjectedFault) {
  fault::set("throw:1");
  auto policy = pstlb::test::make_eager<pstlb::exec::steal_policy>();
  std::vector<int> v(8192, 1);
  EXPECT_THROW(
      pstlb::for_each(policy, v.begin(), v.end(), [](int& x) { x += 1; }),
      fault::injected_fault);
  fault::set(fault::spec{});
  EXPECT_EQ(pstlb::reduce(policy, v.begin(), v.end(), 0), 8192);
}

TEST_F(FaultWatchdog, InjectedThrowIsDeterministicInTheSeed) {
  // Same seed -> same chunks drawn; different seed -> (at p=0.5, 4096
  // chunk starts) virtually certain to differ somewhere. The draw is a pure
  // hash, so equality is exact, not statistical.
  const fault::spec a = fault::parse("throw:0.5", 7);
  const fault::spec b = fault::parse("throw:0.5", 8);
  auto draws = [](const fault::spec& s) {
    fault::set(s);
    std::vector<bool> out;
    for (index_t begin = 0; begin < 4096; begin += 64) {
      bool threw = false;
      try {
        fault::on_chunk(begin);
      } catch (const fault::injected_fault&) {
        threw = true;
      }
      out.push_back(threw);
    }
    return out;
  };
  const auto first = draws(a);
  EXPECT_EQ(first, draws(a));
  EXPECT_NE(first, draws(b));
}

TEST_F(FaultWatchdog, InjectedOomPropagatesFromFirstTouchAllocator) {
  fault::set("oom:1");
  pstlb::numa::first_touch_allocator<double> alloc;
  EXPECT_THROW((void)alloc.allocate(1024), std::bad_alloc);
  pstlb::numa::default_touch_allocator<double> plain;
  EXPECT_THROW((void)plain.allocate(1024), std::bad_alloc);
  fault::set(fault::spec{});
  double* p = alloc.allocate(1024);
  ASSERT_NE(p, nullptr);
  alloc.deallocate(p, 1024);
}

TEST_F(FaultWatchdog, WatchdogCancelsAnInjectedStallWithinTwiceTheInterval) {
  // Every chunk stalls for 30 s — far past the 1 s watchdog interval — but
  // polls the region's cancel token. The watchdog must diagnose, cancel,
  // and get the caller its watchdog_timeout within 2x the interval; without
  // the watchdog this launch would take 30 s minimum.
  constexpr unsigned interval_ms = 1000;
  watchdog::set_timeout_ms(interval_ms);
  fault::set("stall:30000");
  const std::uint64_t fired_before = watchdog::fired_count();
  auto policy = pstlb::test::make_eager<pstlb::exec::steal_policy>(4, 128);
  std::vector<int> v(1024, 1);
  ::testing::internal::CaptureStderr();
  const auto t0 = std::chrono::steady_clock::now();
  EXPECT_THROW(
      pstlb::for_each(policy, v.begin(), v.end(), [](int& x) { x += 1; }),
      pstlb::sched::watchdog_timeout);
  const auto elapsed = std::chrono::duration_cast<std::chrono::milliseconds>(
      std::chrono::steady_clock::now() - t0);
  const std::string dump = ::testing::internal::GetCapturedStderr();
  EXPECT_LT(elapsed.count(), 2 * interval_ms);
  EXPECT_GT(watchdog::fired_count(), fired_before);
  // The diagnostic names the wedged workers and their pool.
  EXPECT_NE(dump.find("stalled worker"), std::string::npos) << dump;
  EXPECT_NE(dump.find("steal"), std::string::npos) << dump;
  // The pool fully recovered: the stalled workers drained cooperatively.
  fault::set(fault::spec{});
  watchdog::set_timeout_ms(0);
  EXPECT_EQ(pstlb::reduce(policy, v.begin(), v.end(), 0), 1024);
}

TEST_F(FaultWatchdog, WatchdogStaysQuietOnHealthyProgress) {
  // Chunks complete continuously; a watchdog that counts wall time instead
  // of progress would fire spuriously here (total run >> interval).
  watchdog::set_timeout_ms(200);
  const std::uint64_t fired_before = watchdog::fired_count();
  auto policy = pstlb::test::make_eager<pstlb::exec::omp_dynamic_policy>(4, 8);
  std::vector<int> v(512, 1);
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::milliseconds(600);
  long long total = 0;
  while (std::chrono::steady_clock::now() < deadline) {
    total += pstlb::reduce(policy, v.begin(), v.end(), 0);
  }
  EXPECT_GT(total, 0);
  EXPECT_EQ(watchdog::fired_count(), fired_before);
}

}  // namespace
