// Differential fuzzing: deterministic pseudo-random inputs and parameters,
// every algorithm checked against its std:: reference, across seeds and
// backends. Catches interaction bugs the targeted tests miss (odd sizes,
// adversarial duplicate densities, extreme predicates).
#include <gtest/gtest.h>

#include <algorithm>
#include <numeric>
#include <vector>

#include "backends/backend_registry.hpp"
#include "pstlb/pstlb.hpp"
#include "support/policies.hpp"

namespace {

using pstlb::index_t;
using pstlb::backends::backend_id;

struct rng {
  std::uint64_t state;
  explicit rng(std::uint64_t seed) : state(seed * 0x9E3779B97F4A7C15ull + 1) {}
  std::uint64_t next() {
    state = state * 6364136223846793005ull + 1442695040888963407ull;
    return state >> 11;
  }
  index_t size(index_t max) { return static_cast<index_t>(next() % static_cast<std::uint64_t>(max)); }
  long long value(long long mod) { return static_cast<long long>(next() % static_cast<std::uint64_t>(mod)); }
};

class FuzzDifferential
    : public ::testing::TestWithParam<std::tuple<std::uint64_t, backend_id>> {
 protected:
  template <class F>
  void with_policy(F&& f) const {
    pstlb::backends::with_policy(std::get<1>(GetParam()), 4, [&](auto policy) {
      if constexpr (pstlb::exec::ParallelPolicy<decltype(policy)>) {
        policy.seq_threshold = 0;
      }
      f(policy);
      return 0;
    });
  }

  std::vector<long long> input(rng& r, index_t max_size = 30000,
                               long long mod = 1000) const {
    std::vector<long long> v(static_cast<std::size_t>(r.size(max_size) + 1));
    for (auto& x : v) { x = r.value(mod); }
    return v;
  }
};

TEST_P(FuzzDifferential, MapFamily) {
  rng r(std::get<0>(GetParam()) * 3 + 1);
  with_policy([&](auto policy) {
    for (int round = 0; round < 8; ++round) {
      auto v = input(r);
      auto expected = v;
      const long long addend = r.value(100);
      std::for_each(expected.begin(), expected.end(),
                    [addend](long long& x) { x = x * 3 + addend; });
      pstlb::for_each(policy, v.begin(), v.end(),
                      [addend](long long& x) { x = x * 3 + addend; });
      ASSERT_EQ(v, expected);

      std::vector<long long> out(v.size()), out_expected(v.size());
      std::transform(v.begin(), v.end(), out_expected.begin(),
                     [](long long x) { return x / 7; });
      pstlb::transform(policy, v.begin(), v.end(), out.begin(),
                       [](long long x) { return x / 7; });
      ASSERT_EQ(out, out_expected);
    }
  });
}

TEST_P(FuzzDifferential, ReduceFamily) {
  rng r(std::get<0>(GetParam()) * 5 + 2);
  with_policy([&](auto policy) {
    for (int round = 0; round < 8; ++round) {
      const auto v = input(r);
      ASSERT_EQ(pstlb::reduce(policy, v.begin(), v.end(), 0LL),
                std::reduce(v.begin(), v.end(), 0LL));
      const long long needle = r.value(1000);
      ASSERT_EQ(pstlb::count(policy, v.begin(), v.end(), needle),
                std::count(v.begin(), v.end(), needle));
      ASSERT_EQ(pstlb::find(policy, v.begin(), v.end(), needle) - v.begin(),
                std::find(v.begin(), v.end(), needle) - v.begin());
      ASSERT_EQ(*pstlb::min_element(policy, v.begin(), v.end()),
                *std::min_element(v.begin(), v.end()));
      ASSERT_EQ(*pstlb::max_element(policy, v.begin(), v.end()),
                *std::max_element(v.begin(), v.end()));
    }
  });
}

TEST_P(FuzzDifferential, ScanAndPackFamily) {
  rng r(std::get<0>(GetParam()) * 7 + 3);
  with_policy([&](auto policy) {
    for (int round = 0; round < 6; ++round) {
      const auto v = input(r);
      std::vector<long long> out(v.size()), expected(v.size());
      std::inclusive_scan(v.begin(), v.end(), expected.begin());
      pstlb::inclusive_scan(policy, v.begin(), v.end(), out.begin());
      ASSERT_EQ(out, expected);

      const long long pivot = r.value(1000);
      auto pred = [pivot](long long x) { return x < pivot; };
      std::vector<long long> packed(v.size(), -1), packed_expected(v.size(), -1);
      auto pe = std::copy_if(v.begin(), v.end(), packed_expected.begin(), pred);
      auto po = pstlb::copy_if(policy, v.begin(), v.end(), packed.begin(), pred);
      ASSERT_EQ(po - packed.begin(), pe - packed_expected.begin());
      ASSERT_EQ(packed, packed_expected);
    }
  });
}

TEST_P(FuzzDifferential, SortMergePartitionFamily) {
  rng r(std::get<0>(GetParam()) * 11 + 4);
  with_policy([&](auto policy) {
    for (int round = 0; round < 4; ++round) {
      // Adversarial duplicate density: mod in {2, 10, big}.
      const long long mods[]{2, 10, 100000};
      auto v = input(r, 20000, mods[static_cast<std::size_t>(round) % 3]);
      auto expected = v;
      std::sort(expected.begin(), expected.end());
      pstlb::sort(policy, v.begin(), v.end());
      ASSERT_EQ(v, expected);

      const long long pivot = r.value(1000);
      auto pred = [pivot](long long x) { return x % 997 < pivot; };
      auto v2 = expected;
      auto exp2 = expected;
      auto e = std::stable_partition(exp2.begin(), exp2.end(), pred);
      auto o = pstlb::stable_partition(policy, v2.begin(), v2.end(), pred);
      ASSERT_EQ(o - v2.begin(), e - exp2.begin());
      ASSERT_EQ(v2, exp2);

      // Merge two sorted halves of different sizes.
      const auto cut = expected.begin() + static_cast<index_t>(r.size(
                           static_cast<index_t>(expected.size()) + 1));
      std::vector<long long> lo(expected.begin(), cut), hi(cut, expected.end());
      std::sort(lo.begin(), lo.end());
      std::sort(hi.begin(), hi.end());
      std::vector<long long> merged(expected.size()), merged_expected(expected.size());
      std::merge(lo.begin(), lo.end(), hi.begin(), hi.end(), merged_expected.begin());
      pstlb::merge(policy, lo.begin(), lo.end(), hi.begin(), hi.end(), merged.begin());
      ASSERT_EQ(merged, merged_expected);
    }
  });
}

TEST_P(FuzzDifferential, SamplesortPipeline) {
  // Same differential checks with the sort pinned to the samplesort
  // pipeline (the size-threshold default would route these small fuzz
  // inputs to mergesort and never exercise it).
  rng r(std::get<0>(GetParam()) * 17 + 6);
  with_policy([&](auto policy) {
    if constexpr (pstlb::exec::ParallelPolicy<decltype(policy)>) {
      policy.sort = pstlb::exec::sort_path::sample;
    }
    for (int round = 0; round < 4; ++round) {
      const long long mods[]{2, 10, 100000};
      auto v = input(r, 20000, mods[static_cast<std::size_t>(round) % 3]);
      auto expected = v;
      std::sort(expected.begin(), expected.end());
      pstlb::sort(policy, v.begin(), v.end());
      ASSERT_EQ(v, expected);

      // Stability differential: pair each key with its original index and
      // compare against std::stable_sort on the key alone.
      auto w = input(r, 20000, 50);
      std::vector<std::pair<long long, index_t>> tagged(w.size());
      for (std::size_t i = 0; i < w.size(); ++i) {
        tagged[i] = {w[i], static_cast<index_t>(i)};
      }
      auto tagged_expected = tagged;
      auto by_key = [](const auto& a, const auto& b) { return a.first < b.first; };
      std::stable_sort(tagged_expected.begin(), tagged_expected.end(), by_key);
      pstlb::stable_sort(policy, tagged.begin(), tagged.end(), by_key);
      ASSERT_EQ(tagged, tagged_expected);
    }
  });
}

TEST_P(FuzzDifferential, SetFamily) {
  rng r(std::get<0>(GetParam()) * 13 + 5);
  with_policy([&](auto policy) {
    for (int round = 0; round < 4; ++round) {
      auto a = input(r, 8000, 200);  // heavy duplicates
      auto b = input(r, 8000, 200);
      std::sort(a.begin(), a.end());
      std::sort(b.begin(), b.end());
      std::vector<long long> out(a.size() + b.size()), expected(a.size() + b.size());

      auto eu = std::set_union(a.begin(), a.end(), b.begin(), b.end(), expected.begin());
      auto ou = pstlb::set_union(policy, a.begin(), a.end(), b.begin(), b.end(),
                                 out.begin());
      ASSERT_EQ(ou - out.begin(), eu - expected.begin());
      ASSERT_TRUE(std::equal(out.begin(), ou, expected.begin()));

      auto ei = std::set_intersection(a.begin(), a.end(), b.begin(), b.end(),
                                      expected.begin());
      auto oi = pstlb::set_intersection(policy, a.begin(), a.end(), b.begin(), b.end(),
                                        out.begin());
      ASSERT_EQ(oi - out.begin(), ei - expected.begin());
      ASSERT_TRUE(std::equal(out.begin(), oi, expected.begin()));

      ASSERT_EQ(pstlb::includes(policy, a.begin(), a.end(), b.begin(), b.end()),
                std::includes(a.begin(), a.end(), b.begin(), b.end()));
    }
  });
}

std::vector<std::tuple<std::uint64_t, backend_id>> fuzz_grid() {
  std::vector<std::tuple<std::uint64_t, backend_id>> grid;
  for (std::uint64_t seed = 1; seed <= 6; ++seed) {
    for (backend_id id :
         {backend_id::fork_join, backend_id::omp_dynamic, backend_id::steal,
          backend_id::task_futures}) {
      grid.emplace_back(seed, id);
    }
  }
  return grid;
}

INSTANTIATE_TEST_SUITE_P(Seeds, FuzzDifferential, ::testing::ValuesIn(fuzz_grid()));

}  // namespace
