// Property-based sweeps (TEST_P over size x backend x grain): algebraic
// invariants that must hold for every scheduling configuration, with
// deterministic pseudo-random inputs.
#include <gtest/gtest.h>

#include <algorithm>
#include <numeric>
#include <string>
#include <tuple>
#include <vector>

#include "backends/backend_registry.hpp"
#include "pstlb/pstlb.hpp"
#include "support/policies.hpp"

namespace {

using pstlb::index_t;
using pstlb::backends::backend_id;

std::vector<long long> seeded_values(index_t n, std::uint64_t seed) {
  std::vector<long long> v(static_cast<std::size_t>(n));
  std::uint64_t state = seed * 0x9E3779B97F4A7C15ull + 0xD1B54A32D192ED03ull;
  for (auto& x : v) {
    state = state * 6364136223846793005ull + 1442695040888963407ull;
    x = static_cast<long long>(state >> 40);
  }
  return v;
}

struct sweep_param {
  index_t n;
  backend_id backend;
  index_t grain;  // 0 = auto
};

void PrintTo(const sweep_param& p, std::ostream* os) {
  *os << "n=" << p.n << " backend=" << pstlb::backends::name_of(p.backend)
      << " grain=" << p.grain;
}

class PropertySweep : public ::testing::TestWithParam<sweep_param> {
 protected:
  template <class F>
  auto with_policy(F&& f) const {
    const auto p = GetParam();
    return pstlb::backends::with_policy(p.backend, 4, [&](auto policy) {
      if constexpr (pstlb::exec::ParallelPolicy<decltype(policy)>) {
        policy.seq_threshold = 0;
        policy.grain = p.grain;
      }
      return f(policy);
    });
  }
};

TEST_P(PropertySweep, SortProducesSortedPermutation) {
  const auto p = GetParam();
  auto v = seeded_values(p.n, 11);
  auto sorted_ref = v;
  std::sort(sorted_ref.begin(), sorted_ref.end());
  with_policy([&](auto policy) {
    pstlb::sort(policy, v.begin(), v.end());
    return 0;
  });
  ASSERT_EQ(v, sorted_ref);
}

TEST_P(PropertySweep, ReduceEqualsSequentialSum) {
  const auto p = GetParam();
  const auto v = seeded_values(p.n, 23);
  const long long expected = std::accumulate(v.begin(), v.end(), 0LL);
  const long long got = with_policy([&](auto policy) {
    return pstlb::reduce(policy, v.begin(), v.end(), 0LL);
  });
  ASSERT_EQ(got, expected);
}

TEST_P(PropertySweep, ScanLastElementEqualsReduce) {
  const auto p = GetParam();
  if (p.n == 0) { GTEST_SKIP(); }
  const auto v = seeded_values(p.n, 31);
  std::vector<long long> out(v.size());
  const long long total = with_policy([&](auto policy) {
    pstlb::inclusive_scan(policy, v.begin(), v.end(), out.begin());
    return pstlb::reduce(policy, v.begin(), v.end(), 0LL);
  });
  ASSERT_EQ(out.back(), total);
  // Prefix monotone consistency: out[i] - out[i-1] == v[i].
  for (std::size_t i = 1; i < out.size(); i += std::max<std::size_t>(1, out.size() / 64)) {
    ASSERT_EQ(out[i] - out[i - 1], v[i]) << i;
  }
}

TEST_P(PropertySweep, ExclusivePlusElementEqualsInclusive) {
  const auto p = GetParam();
  if (p.n == 0) { GTEST_SKIP(); }
  const auto v = seeded_values(p.n, 37);
  std::vector<long long> inc(v.size()), exc(v.size());
  with_policy([&](auto policy) {
    pstlb::inclusive_scan(policy, v.begin(), v.end(), inc.begin());
    pstlb::exclusive_scan(policy, v.begin(), v.end(), exc.begin(), 0LL);
    return 0;
  });
  for (std::size_t i = 0; i < v.size(); ++i) {
    ASSERT_EQ(exc[i] + v[i], inc[i]) << i;
  }
}

TEST_P(PropertySweep, FindAgreesWithStdFind) {
  const auto p = GetParam();
  if (p.n == 0) { GTEST_SKIP(); }
  auto v = seeded_values(p.n, 41);
  // Plant a known value at a pseudo-random position.
  const index_t pos = (p.n * 7) / 11;
  v[static_cast<std::size_t>(pos)] = -42;
  const auto expected = std::find(v.begin(), v.end(), -42LL) - v.begin();
  const auto got = with_policy([&](auto policy) {
    return pstlb::find(policy, v.begin(), v.end(), -42LL) - v.begin();
  });
  ASSERT_EQ(got, expected);
}

TEST_P(PropertySweep, CopyIfPlusRemoveCopyIfPartitionsInput) {
  const auto p = GetParam();
  const auto v = seeded_values(p.n, 43);
  auto pred = [](long long x) { return x % 3 == 0; };
  std::vector<long long> kept(v.size()), dropped(v.size());
  index_t nk = 0;
  index_t nd = 0;
  with_policy([&](auto policy) {
    nk = pstlb::copy_if(policy, v.begin(), v.end(), kept.begin(), pred) - kept.begin();
    nd = pstlb::remove_copy_if(policy, v.begin(), v.end(), dropped.begin(), pred) -
         dropped.begin();
    return 0;
  });
  ASSERT_EQ(nk + nd, p.n);
  ASSERT_TRUE(std::all_of(kept.begin(), kept.begin() + nk, pred));
  ASSERT_TRUE(std::none_of(dropped.begin(), dropped.begin() + nd, pred));
}

TEST_P(PropertySweep, MinMaxElementsBoundTheRange) {
  const auto p = GetParam();
  if (p.n == 0) { GTEST_SKIP(); }
  const auto v = seeded_values(p.n, 47);
  with_policy([&](auto policy) {
    const auto mn = pstlb::min_element(policy, v.begin(), v.end());
    const auto mx = pstlb::max_element(policy, v.begin(), v.end());
    EXPECT_EQ(*mn, *std::min_element(v.begin(), v.end()));
    EXPECT_EQ(*mx, *std::max_element(v.begin(), v.end()));
    return 0;
  });
}

TEST_P(PropertySweep, SortThenUniqueEqualsSetSemantics) {
  const auto p = GetParam();
  auto v = seeded_values(p.n, 53);
  for (auto& x : v) { x %= 97; }  // force duplicates
  auto expected = v;
  std::sort(expected.begin(), expected.end());
  expected.erase(std::unique(expected.begin(), expected.end()), expected.end());
  index_t count = 0;
  with_policy([&](auto policy) {
    pstlb::sort(policy, v.begin(), v.end());
    count = pstlb::unique(policy, v.begin(), v.end()) - v.begin();
    return 0;
  });
  ASSERT_EQ(count, static_cast<index_t>(expected.size()));
  ASSERT_TRUE(std::equal(v.begin(), v.begin() + count, expected.begin()));
}

std::vector<sweep_param> sweep_grid() {
  std::vector<sweep_param> grid;
  for (const index_t n : {index_t{0}, index_t{1}, index_t{2}, index_t{100},
                          index_t{1024}, index_t{33333}}) {
    for (const backend_id id :
         {backend_id::seq, backend_id::fork_join, backend_id::omp_static,
          backend_id::omp_dynamic, backend_id::steal, backend_id::task_futures}) {
      for (const index_t grain : {index_t{0}, index_t{1}, index_t{513}}) {
        grid.push_back({n, id, grain});
      }
    }
  }
  return grid;
}

INSTANTIATE_TEST_SUITE_P(Grid, PropertySweep, ::testing::ValuesIn(sweep_grid()));

}  // namespace
