// Samplesort pipeline coverage: correctness on adversarial key
// distributions, the stability contract, the recursion and all-equal escape
// hatches, env-knob selection, traffic accounting, and fault propagation
// during classification/scatter.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdlib>
#include <numeric>
#include <random>
#include <string>
#include <vector>

#include "pstlb/detail/samplesort.hpp"
#include "pstlb/detail/sort_stats.hpp"
#include "pstlb/fault.hpp"
#include "pstlb/pstlb.hpp"
#include "support/policies.hpp"

namespace {

using pstlb::index_t;

class EnvVar {
 public:
  EnvVar(const char* name, const char* value) : name_(name) {
    ::setenv(name, value, 1);
  }
  ~EnvVar() { ::unsetenv(name_); }
  EnvVar(const EnvVar&) = delete;
  EnvVar& operator=(const EnvVar&) = delete;

 private:
  const char* name_;
};

/// A policy pinned to the samplesort pipeline regardless of input size.
template <class P>
P sample_policy(unsigned threads = pstlb::test::kTestThreads) {
  P policy = pstlb::test::make_eager<P>(threads);
  policy.sort = pstlb::exec::sort_path::sample;
  return policy;
}

std::vector<long long> zipf_input(index_t n, std::uint64_t seed) {
  // Duplicate-heavy, heavily skewed: rank r appears ~ n / r times.
  std::mt19937_64 rng(seed);
  std::vector<long long> v(static_cast<std::size_t>(n));
  for (auto& x : v) {
    const double u = std::uniform_real_distribution<double>(0.001, 1.0)(rng);
    x = static_cast<long long>(1.0 / u);  // ~Zipf(1) over [1, 1000]
  }
  return v;
}

template <class P>
class SamplesortPolicies : public ::testing::Test {};
TYPED_TEST_SUITE(SamplesortPolicies, PstlbPolicyTypes);

TYPED_TEST(SamplesortPolicies, SortsRandomInputOnEveryBackend) {
  auto pol = sample_policy<TypeParam>();
  std::mt19937_64 rng(17);
  std::vector<long long> v(1 << 17);
  for (auto& x : v) { x = static_cast<long long>(rng()); }
  auto expected = v;
  std::sort(expected.begin(), expected.end());
  pstlb::sort(pol, v.begin(), v.end());
  EXPECT_EQ(v, expected);
}

TYPED_TEST(SamplesortPolicies, StableSortKeepsEqualKeyOrder) {
  struct kv {
    int key = 0;
    int seq = 0;
  };
  auto pol = sample_policy<TypeParam>();
  std::mt19937_64 rng(23);
  std::vector<kv> v(1 << 16);
  for (int i = 0; i < static_cast<int>(v.size()); ++i) {
    v[static_cast<std::size_t>(i)] = {static_cast<int>(rng() % 37), i};
  }
  auto by_key = [](const kv& a, const kv& b) { return a.key < b.key; };
  pstlb::stable_sort(pol, v.begin(), v.end(), by_key);
  ASSERT_TRUE(std::is_sorted(v.begin(), v.end(), by_key));
  for (std::size_t i = 1; i < v.size(); ++i) {
    if (v[i - 1].key == v[i].key) { ASSERT_LT(v[i - 1].seq, v[i].seq); }
  }
}

TEST(Samplesort, AllEqualKeys) {
  auto pol = sample_policy<pstlb::exec::steal_policy>();
  std::vector<double> v(1 << 17, 42.0);
  pstlb::sort(pol, v.begin(), v.end());
  EXPECT_TRUE(std::all_of(v.begin(), v.end(), [](double x) { return x == 42.0; }));
}

TEST(Samplesort, PresortedAndReverse) {
  auto pol = sample_policy<pstlb::exec::steal_policy>();
  std::vector<long long> v(1 << 17);
  std::iota(v.begin(), v.end(), 0LL);
  auto expected = v;
  pstlb::sort(pol, v.begin(), v.end());
  EXPECT_EQ(v, expected);

  std::reverse(v.begin(), v.end());
  pstlb::sort(pol, v.begin(), v.end());
  EXPECT_EQ(v, expected);
}

TEST(Samplesort, DuplicateHeavyZipf) {
  auto pol = sample_policy<pstlb::exec::steal_policy>();
  auto v = zipf_input(1 << 17, 5);
  auto expected = v;
  std::sort(expected.begin(), expected.end());
  pstlb::sort(pol, v.begin(), v.end());
  EXPECT_EQ(v, expected);
}

TEST(Samplesort, TinyBucketCapForcesRecursion) {
  // With a 32-element cap (the floor) nearly every bucket overflows, so the
  // depth-1 sequential recursion runs constantly; Zipf keys also hit the
  // all-equal escape inside oversized buckets.
  EnvVar cap("PSTLB_SORT_BUCKET_CAP", "32");
  EnvVar over("PSTLB_SORT_OVERSAMPLE", "4");
  auto pol = sample_policy<pstlb::exec::steal_policy>();
  auto v = zipf_input(1 << 16, 11);
  auto expected = v;
  std::sort(expected.begin(), expected.end());
  pstlb::sort(pol, v.begin(), v.end());
  EXPECT_EQ(v, expected);
}

TEST(Samplesort, ThreadSweepRegression) {
  std::mt19937_64 rng(31);
  std::vector<long long> base(1 << 16);
  for (auto& x : base) { x = static_cast<long long>(rng() % 10000); }
  auto expected = base;
  std::sort(expected.begin(), expected.end());
  for (unsigned threads : {1u, 2u, 3u, 4u, 8u}) {
    auto v = base;
    auto pol = sample_policy<pstlb::exec::steal_policy>(threads);
    pstlb::sort(pol, v.begin(), v.end());
    EXPECT_EQ(v, expected) << "threads=" << threads;
  }
}

TEST(Samplesort, BoundarySizes) {
  auto pol = sample_policy<pstlb::exec::steal_policy>();
  for (index_t n : pstlb::test::test_sizes()) {
    std::mt19937_64 rng(static_cast<std::uint64_t>(n) + 1);
    std::vector<long long> v(static_cast<std::size_t>(n));
    for (auto& x : v) { x = static_cast<long long>(rng() % 100); }
    auto expected = v;
    std::sort(expected.begin(), expected.end());
    pstlb::sort(pol, v.begin(), v.end());
    EXPECT_EQ(v, expected) << "n=" << n;
  }
}

TEST(Samplesort, EnvOverrideSelectsPipeline) {
  // PSTLB_SORT beats the policy's explicit choice in both directions.
  std::mt19937_64 rng(41);
  std::vector<double> v(1 << 15);
  for (auto& x : v) { x = static_cast<double>(rng() % 1000); }
  {
    EnvVar mode("PSTLB_SORT", "sample");
    auto pol = pstlb::test::make_eager<pstlb::exec::steal_policy>();
    pol.sort = pstlb::exec::sort_path::merge;
    auto w = v;
    pstlb::sort(pol, w.begin(), w.end());
    EXPECT_TRUE(std::is_sorted(w.begin(), w.end()));
    EXPECT_STREQ(pstlb::detail::last_sort_traffic().algorithm, "sample");
  }
  {
    EnvVar mode("PSTLB_SORT", "merge");
    auto pol = pstlb::test::make_eager<pstlb::exec::steal_policy>();
    pol.sort = pstlb::exec::sort_path::sample;
    auto w = v;
    pstlb::sort(pol, w.begin(), w.end());
    EXPECT_TRUE(std::is_sorted(w.begin(), w.end()));
    EXPECT_STREQ(pstlb::detail::last_sort_traffic().algorithm, "merge");
  }
}

TEST(Samplesort, AutomaticThresholdRoutesBySize) {
  auto pol = pstlb::test::make_eager<pstlb::exec::steal_policy>();
  ASSERT_EQ(pol.sort, pstlb::exec::sort_path::automatic);
  std::mt19937_64 rng(43);
  std::vector<double> v(static_cast<std::size_t>(pol.sample_sort_min));
  for (auto& x : v) { x = static_cast<double>(rng() % 1000); }

  pstlb::sort(pol, v.begin(), v.end());  // n == sample_sort_min -> samplesort
  EXPECT_STREQ(pstlb::detail::last_sort_traffic().algorithm, "sample");

  std::vector<double> small(v.begin(),
                            v.begin() + pol.sample_sort_min / 2);
  pstlb::sort(pol, small.begin(), small.end());
  EXPECT_STREQ(pstlb::detail::last_sort_traffic().algorithm, "merge");
}

TEST(Samplesort, TrafficSnapshotShowsConstantPasses) {
  auto pol = sample_policy<pstlb::exec::steal_policy>();
  std::mt19937_64 rng(47);
  std::vector<double> v(1 << 18);
  for (auto& x : v) { x = static_cast<double>(rng()); }
  pstlb::sort(pol, v.begin(), v.end());
  const auto& st = pstlb::detail::last_sort_traffic();
  EXPECT_STREQ(st.algorithm, "sample");
  EXPECT_GT(st.input_bytes, 0.0);
  // ~3 read passes (classify, scatter, bucket load) + the sample reads.
  EXPECT_GE(st.read_passes(), 2.9);
  EXPECT_LE(st.read_passes(), 3.5);
  // Exactly 2 write passes (scatter, move-back).
  EXPECT_NEAR(st.write_passes(), 2.0, 0.01);

  // Mergesort's pass count grows with the round count instead.
  auto merge_pol = pstlb::test::make_eager<pstlb::exec::steal_policy>();
  merge_pol.sort = pstlb::exec::sort_path::merge;
  pstlb::sort(merge_pol, v.begin(), v.end());
  const auto& mt = pstlb::detail::last_sort_traffic();
  EXPECT_STREQ(mt.algorithm, "merge");
  EXPECT_GT(mt.merge_round_count, 0);
  EXPECT_NEAR(mt.read_passes(), 1.0 + mt.merge_round_count, 0.01);
}

TEST(Samplesort, DeterministicSplitterDraws) {
  EXPECT_EQ(pstlb::detail::samplesort_draw(7),
            pstlb::detail::samplesort_draw(7));
  EXPECT_NE(pstlb::detail::samplesort_draw(7),
            pstlb::detail::samplesort_draw(8));
}

TEST(Samplesort, BucketCountBounds) {
  using pstlb::detail::samplesort_buckets;
  // Small n: never degenerate buckets.
  EXPECT_LE(samplesort_buckets(64, 8, 1 << 15), 64 / 32);
  // Large n with a small cap: capped at 4096.
  EXPECT_EQ(samplesort_buckets(1 << 24, 8, 64), 4096);
  // Always enough buckets to balance the given threads (n permitting).
  EXPECT_GE(samplesort_buckets(1 << 20, 16, 1 << 15), 16 * 4);
}

TEST(Samplesort, NodeAffineScatterMatchesStdSort) {
  // Synthetic 2-node topology activates the node-affine scatter path (bucket
  // homes from the page registry, leaf sorts seeded onto the owning node's
  // workers). The result must be identical to std::sort, and identical to the
  // same pipeline with the placement protocol disabled.
  EnvVar topo("PSTLB_TOPOLOGY", "2x1x2");
  EnvVar locality("PSTLB_STEAL_LOCALITY", "1");
  auto base = zipf_input(1 << 17, 61);
  auto expected = base;
  std::sort(expected.begin(), expected.end());

  auto pol = sample_policy<pstlb::exec::steal_policy>();
  {
    EnvVar scatter("PSTLB_NUMA_SCATTER", "1");
    auto v = base;
    pstlb::sort(pol, v.begin(), v.end());
    EXPECT_EQ(v, expected);
    EXPECT_STREQ(pstlb::detail::last_sort_traffic().algorithm, "sample");
  }
  {
    EnvVar scatter("PSTLB_NUMA_SCATTER", "0");
    auto v = base;
    pstlb::sort(pol, v.begin(), v.end());
    EXPECT_EQ(v, expected);
  }
}

TEST(Samplesort, NodeAffineScatterStableSortKeepsOrder) {
  struct kv {
    int key = 0;
    int seq = 0;
  };
  EnvVar topo("PSTLB_TOPOLOGY", "2x2x2");
  auto pol = sample_policy<pstlb::exec::steal_policy>();
  std::mt19937_64 rng(67);
  std::vector<kv> v(1 << 16);
  for (int i = 0; i < static_cast<int>(v.size()); ++i) {
    v[static_cast<std::size_t>(i)] = {static_cast<int>(rng() % 29), i};
  }
  auto by_key = [](const kv& a, const kv& b) { return a.key < b.key; };
  pstlb::stable_sort(pol, v.begin(), v.end(), by_key);
  ASSERT_TRUE(std::is_sorted(v.begin(), v.end(), by_key));
  for (std::size_t i = 1; i < v.size(); ++i) {
    if (v[i - 1].key == v[i].key) { ASSERT_LT(v[i - 1].seq, v[i].seq); }
  }
}

TEST(Samplesort, NodeAffineFaultStillSingleException) {
  EnvVar topo("PSTLB_TOPOLOGY", "2x1x2");
  auto pol = sample_policy<pstlb::exec::steal_policy>();
  std::vector<double> v(1 << 16);
  std::mt19937_64 rng(71);
  for (auto& x : v) { x = static_cast<double>(rng()); }
  pstlb::fault::set("throw:1");
  int caught = 0;
  try {
    pstlb::sort(pol, v.begin(), v.end());
  } catch (const pstlb::fault::injected_fault&) {
    ++caught;
  }
  pstlb::fault::set(pstlb::fault::spec{});
  EXPECT_EQ(caught, 1);
  pstlb::sort(pol, v.begin(), v.end());
  EXPECT_TRUE(std::is_sorted(v.begin(), v.end()));
}

TYPED_TEST(SamplesortPolicies, InjectedFaultPropagatesExactlyOneException) {
  // throw:1 fires in the first classification chunk on every worker; the
  // pool's cancellation protocol must surface exactly one injected_fault and
  // leave no peer stranded (the test completing at all proves the latter).
  auto pol = sample_policy<TypeParam>();
  std::vector<double> v(1 << 16);
  std::mt19937_64 rng(53);
  for (auto& x : v) { x = static_cast<double>(rng()); }
  pstlb::fault::set("throw:1");
  int caught = 0;
  try {
    pstlb::sort(pol, v.begin(), v.end());
  } catch (const pstlb::fault::injected_fault&) {
    ++caught;
  }
  pstlb::fault::set(pstlb::fault::spec{});
  EXPECT_EQ(caught, 1);

  // The array still holds a permutation-or-original multiset? No: sort gives
  // no guarantee after a throw. What must still work is a clean retry.
  pstlb::sort(pol, v.begin(), v.end());
  EXPECT_TRUE(std::is_sorted(v.begin(), v.end()));
}

TYPED_TEST(SamplesortPolicies, LowProbabilityFaultStillSingleException) {
  // throw:0.05 lands mid-pipeline (classification on some chunks, scatter or
  // bucket sort on others, depending on the hash) — whichever phase throws,
  // at most one exception crosses the API per call.
  auto pol = sample_policy<TypeParam>();
  pstlb::fault::spec s = pstlb::fault::parse("throw:0.05", 99);
  std::vector<double> v(1 << 16);
  std::mt19937_64 rng(59);
  for (auto& x : v) { x = static_cast<double>(rng()); }
  for (int attempt = 0; attempt < 4; ++attempt) {
    pstlb::fault::set(s);
    try {
      pstlb::sort(pol, v.begin(), v.end());
    } catch (const pstlb::fault::injected_fault&) {
    }
    pstlb::fault::set(pstlb::fault::spec{});
  }
  pstlb::sort(pol, v.begin(), v.end());
  EXPECT_TRUE(std::is_sorted(v.begin(), v.end()));
}

}  // namespace
