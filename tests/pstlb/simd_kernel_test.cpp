// Differential tests for the par_unseq SIMD leaf layer (DESIGN.md §18).
//
// Every vectorized kernel is checked against the scalar reference table at
// every ISA level the host can actually run, across sizes that straddle
// vector-width boundaries and misaligned base pointers. Above the kernel
// layer, the par_unseq / unseq policies are checked against seq at the
// algorithm level, including the documented float-reassociation contract
// and the PSTLB_SIMD=scalar bit-identity guarantee.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <functional>
#include <limits>
#include <numeric>
#include <string>
#include <vector>

#include "pstlb/detail/simd/isa.hpp"
#include "pstlb/detail/simd/kernels.hpp"
#include "pstlb/detail/simd/leaf.hpp"
#include "pstlb/pstlb.hpp"

namespace {

using pstlb::index_t;
namespace simd = pstlb::simd;

/// Restores the active ISA level on scope exit so tests can force levels
/// without leaking state into each other.
struct isa_guard {
  simd::isa saved = simd::active();
  ~isa_guard() { simd::force(saved); }
};

std::vector<simd::isa> runnable_vector_levels() {
  isa_guard guard;
  std::vector<simd::isa> out;
  for (int l = 1; l < simd::isa_count; ++l) {
    const auto level = static_cast<simd::isa>(l);
    if (simd::force(level) == level) { out.push_back(level); }
  }
  return out;
}

/// Sizes straddling the lane-count boundaries of every level (f64 lanes are
/// 2/4/8; f32 and i32 reach 16) plus the blocked-kernel unroll width.
std::vector<index_t> boundary_sizes() {
  std::vector<index_t> sizes = {0, 1, 2, 3};
  for (index_t lanes : {2, 4, 8, 16}) {
    for (index_t mult : {1, 2, 4}) {
      const index_t base = lanes * mult;
      sizes.push_back(base - 1);
      sizes.push_back(base);
      sizes.push_back(base + 1);
    }
  }
  sizes.insert(sizes.end(), {63, 64, 65, 127, 128, 129, 1000, 1023, 1024, 1025});
  std::sort(sizes.begin(), sizes.end());
  sizes.erase(std::unique(sizes.begin(), sizes.end()), sizes.end());
  return sizes;
}

template <class T>
std::vector<T> pattern_data(index_t n, index_t pad) {
  std::vector<T> v(static_cast<std::size_t>(n + pad));
  std::uint64_t state = 0x243F6A8885A308D3ull;
  for (auto& x : v) {
    state = state * 6364136223846793005ull + 1442695040888963407ull;
    // Small magnitudes so float sums stay exactly representable-ish and
    // int products do not overflow.
    x = static_cast<T>(static_cast<long long>(state >> 52) - 2048);
  }
  return v;
}

/// Runs `body(ref_set, vec_set, level)` for each covered element type at
/// each runnable vector level. Misalignment is the caller's business.
template <class T, class Body>
void for_each_level(Body body) {
  const simd::kernel_table& ref_table = simd::scalar_table();
  const simd::kernel_set<T>* ref = simd::detail::table_member<T>::get(ref_table);
  ASSERT_NE(ref, nullptr);
  ASSERT_TRUE(ref_table.compiled);
  for (simd::isa level : runnable_vector_levels()) {
    const simd::kernel_set<T>* vec = simd::set_for<T>(level);
    if (vec == nullptr) { continue; }  // level not compiled for this binary
    body(*ref, *vec, level);
  }
}

template <class T>
void check_reduce_family() {
  for_each_level<T>([](const simd::kernel_set<T>& ref,
                       const simd::kernel_set<T>& vec, simd::isa level) {
    for (index_t n : boundary_sizes()) {
      auto data = pattern_data<T>(n, 3);
      for (index_t off : {index_t{0}, index_t{1}, index_t{3}}) {
        const T* p = data.data() + off;
        SCOPED_TRACE("level=" + std::string(simd::name(level)) +
                     " n=" + std::to_string(n) + " off=" + std::to_string(off));
        if constexpr (std::is_floating_point_v<T>) {
          // Multi-accumulator sums may reassociate: compare within a
          // tolerance scaled to the magnitude of the terms.
          const double expect = static_cast<double>(ref.reduce_sum(p, n));
          const double got = static_cast<double>(vec.reduce_sum(p, n));
          EXPECT_NEAR(got, expect, 1e-6 * (std::abs(expect) + n + 1));
        } else {
          EXPECT_EQ(vec.reduce_sum(p, n), ref.reduce_sum(p, n));
        }
        if (n > 0) {
          EXPECT_EQ(vec.reduce_min(p, n), ref.reduce_min(p, n));
          EXPECT_EQ(vec.reduce_max(p, n), ref.reduce_max(p, n));
          EXPECT_EQ(vec.min_index(p, n), ref.min_index(p, n));
          EXPECT_EQ(vec.max_index(p, n), ref.max_index(p, n));
        }
      }
    }
  });
}

TEST(SimdKernels, ReduceFamilyMatchesScalarAllTypes) {
  check_reduce_family<float>();
  check_reduce_family<double>();
  check_reduce_family<std::int32_t>();
  check_reduce_family<std::int64_t>();
  check_reduce_family<std::uint32_t>();
  check_reduce_family<std::uint64_t>();
}

template <class T>
void check_find_count() {
  for_each_level<T>([](const simd::kernel_set<T>& ref,
                       const simd::kernel_set<T>& vec, simd::isa level) {
    for (index_t n : boundary_sizes()) {
      auto data = pattern_data<T>(n, 3);
      // Plant a needle at several positions, including vector boundaries.
      std::vector<index_t> positions = {0, n / 2, n - 1, n - 7, 64};
      const T needle = static_cast<T>(123456);
      for (index_t pos : positions) {
        auto copy = data;
        if (pos >= 0 && pos < n) { copy[static_cast<std::size_t>(pos)] = needle; }
        for (index_t off : {index_t{0}, index_t{1}}) {
          const T* p = copy.data() + off;
          SCOPED_TRACE("level=" + std::string(simd::name(level)) +
                       " n=" + std::to_string(n) + " pos=" + std::to_string(pos) +
                       " off=" + std::to_string(off));
          EXPECT_EQ(vec.find_eq(p, n, needle), ref.find_eq(p, n, needle));
          EXPECT_EQ(vec.count_eq(p, n, needle), ref.count_eq(p, n, needle));
          // Absent value: find returns n, count returns 0, both sides.
          const T absent = static_cast<T>(654321);
          EXPECT_EQ(vec.find_eq(p, n, absent), ref.find_eq(p, n, absent));
          EXPECT_EQ(vec.count_eq(p, n, absent), ref.count_eq(p, n, absent));
        }
      }
      // Duplicate-heavy input exercises count accumulation.
      std::fill(data.begin(), data.end(), static_cast<T>(7));
      EXPECT_EQ(vec.count_eq(data.data(), n, static_cast<T>(7)), n);
      EXPECT_EQ(vec.find_eq(data.data(), n, static_cast<T>(7)), n > 0 ? 0 : n);
    }
  });
}

TEST(SimdKernels, FindAndCountMatchScalarAllTypes) {
  check_find_count<float>();
  check_find_count<double>();
  check_find_count<std::int32_t>();
  check_find_count<std::int64_t>();
  check_find_count<std::uint32_t>();
  check_find_count<std::uint64_t>();
}

template <class T>
void check_transforms() {
  for_each_level<T>([](const simd::kernel_set<T>& ref,
                       const simd::kernel_set<T>& vec, simd::isa level) {
    for (index_t n : boundary_sizes()) {
      auto a = pattern_data<T>(n, 3);
      auto b = pattern_data<T>(n, 3);
      std::vector<T> out_ref(static_cast<std::size_t>(n + 3));
      std::vector<T> out_vec(static_cast<std::size_t>(n + 3));
      for (index_t off : {index_t{0}, index_t{1}}) {
        SCOPED_TRACE("level=" + std::string(simd::name(level)) +
                     " n=" + std::to_string(n) + " off=" + std::to_string(off));
        const T* pa = a.data() + off;
        const T* pb = b.data() + off;
        ref.add(pa, pb, out_ref.data(), n);
        vec.add(pa, pb, out_vec.data(), n);
        EXPECT_EQ(out_ref, out_vec);
        ref.sub(pa, pb, out_ref.data(), n);
        vec.sub(pa, pb, out_vec.data(), n);
        EXPECT_EQ(out_ref, out_vec);
        ref.mul(pa, pb, out_ref.data(), n);
        vec.mul(pa, pb, out_vec.data(), n);
        EXPECT_EQ(out_ref, out_vec);
        ref.negate(pa, out_ref.data(), n);
        vec.negate(pa, out_vec.data(), n);
        EXPECT_EQ(out_ref, out_vec);
        if constexpr (std::is_floating_point_v<T>) {
          const double expect = static_cast<double>(ref.dot(pa, pb, n));
          const double got = static_cast<double>(vec.dot(pa, pb, n));
          EXPECT_NEAR(got, expect, 1e-4 * (std::abs(expect) + n + 1));
        } else {
          EXPECT_EQ(vec.dot(pa, pb, n), ref.dot(pa, pb, n));
        }
      }
      // In-place aliasing: out == a must behave like a fresh destination.
      auto alias_ref = a;
      auto alias_vec = a;
      ref.add(alias_ref.data(), b.data(), alias_ref.data(), n);
      vec.add(alias_vec.data(), b.data(), alias_vec.data(), n);
      EXPECT_EQ(alias_ref, alias_vec);
    }
  });
}

TEST(SimdKernels, TransformsMatchScalarAllTypes) {
  check_transforms<float>();
  check_transforms<double>();
  check_transforms<std::int32_t>();
  check_transforms<std::int64_t>();
  check_transforms<std::uint32_t>();
  check_transforms<std::uint64_t>();
}

template <class T>
void check_classify() {
  isa_guard guard;
  // Top-splitter values that stress the Eytzinger padding: the type's
  // maximum (collides with the integer padding value) and, for floats,
  // +infinity — legal data samplesort can sample as a splitter, which the
  // padding must still sort at-or-above.
  std::vector<T> tops = {std::numeric_limits<T>::max()};
  if constexpr (std::numeric_limits<T>::has_infinity) {
    tops.push_back(std::numeric_limits<T>::infinity());
  }
  for (simd::isa level : runnable_vector_levels()) {
    if (simd::force(level) != level) { continue; }
    for (index_t n_s : {index_t{1}, index_t{2}, index_t{3}, index_t{15},
                        index_t{16}, index_t{24}, index_t{25}, index_t{31},
                        index_t{33}, index_t{100}, index_t{1000}}) {
      for (T top : tops) {
        std::vector<T> splitters(static_cast<std::size_t>(n_s));
        for (index_t i = 0; i < n_s; ++i) {
          splitters[static_cast<std::size_t>(i)] = static_cast<T>(i * 5);
        }
        if (n_s > 2) { splitters.back() = top; }
        simd::classify_plan<T> plan(splitters.data(), n_s, true);
        if (!plan.engaged()) { continue; }
        const index_t n = 257;
        auto keys = pattern_data<T>(n, 0);
        // Also probe exact splitter values (upper_bound ties).
        for (index_t i = 0; i < std::min(n, n_s); ++i) {
          keys[static_cast<std::size_t>(2 * i % n)] =
              splitters[static_cast<std::size_t>(i)];
        }
        // And the extreme keys: max() sits in [max, inf) where a
        // finite-padded float tree would misrank against an inf splitter.
        keys[0] = std::numeric_limits<T>::max();
        if constexpr (std::numeric_limits<T>::has_infinity) {
          keys[1] = std::numeric_limits<T>::infinity();
        }
        std::vector<std::uint32_t> got(static_cast<std::size_t>(n));
        plan.run(keys.data(), n, got.data());
        for (index_t i = 0; i < n; ++i) {
          const auto expect = static_cast<std::uint32_t>(
              std::upper_bound(splitters.begin(), splitters.end(),
                               keys[static_cast<std::size_t>(i)]) -
              splitters.begin());
          ASSERT_EQ(got[static_cast<std::size_t>(i)], expect)
              << "level=" << simd::name(level) << " n_s=" << n_s
              << " top=" << +top << " i=" << i;
        }
      }
    }
  }
}

TEST(SimdKernels, ClassifyMatchesUpperBound) {
  check_classify<float>();
  check_classify<double>();
  check_classify<std::int32_t>();
  check_classify<std::int64_t>();
  check_classify<std::uint32_t>();
  check_classify<std::uint64_t>();
}

// ---- policy-level checks -------------------------------------------------

TEST(SimdPolicy, LeafForGatesOnPolicyAndIsa) {
  isa_guard guard;
  // Policy did not ask: always null.
  EXPECT_EQ((simd::leaf_for<double, const double*>(false)), nullptr);
  // Scalar active level: null, so the classic leaf runs (bit identity).
  if (simd::force(simd::isa::scalar) == simd::isa::scalar) {
    EXPECT_EQ((simd::leaf_for<double, const double*>(true)), nullptr);
  }
  // Non-contiguous iterators can never vectorize.
  EXPECT_EQ((simd::leaf_for<double, std::vector<bool>::iterator>(true)),
            nullptr);
}

TEST(SimdPolicy, ParUnseqMatchesSeqIntegers) {
  isa_guard guard;
  for (simd::isa level : runnable_vector_levels()) {
    if (simd::force(level) != level) { continue; }
    for (index_t n : {index_t{0}, index_t{1}, index_t{1023}, index_t{65536}}) {
      std::vector<std::int64_t> v(static_cast<std::size_t>(n));
      std::iota(v.begin(), v.end(), -37);
      SCOPED_TRACE("level=" + std::string(simd::name(level)) +
                   " n=" + std::to_string(n));
      EXPECT_EQ(pstlb::reduce(pstlb::execution::par_unseq, v.begin(), v.end()),
                pstlb::reduce(pstlb::execution::seq, v.begin(), v.end()));
      EXPECT_EQ(
          pstlb::count(pstlb::execution::par_unseq, v.begin(), v.end(), 100),
          pstlb::count(pstlb::execution::seq, v.begin(), v.end(), 100));
      EXPECT_EQ(
          pstlb::find(pstlb::execution::par_unseq, v.begin(), v.end(), 200) -
              v.begin(),
          pstlb::find(pstlb::execution::seq, v.begin(), v.end(), 200) -
              v.begin());
      if (n > 0) {
        EXPECT_EQ(pstlb::min_element(pstlb::execution::par_unseq, v.begin(),
                                     v.end()) -
                      v.begin(),
                  pstlb::min_element(pstlb::execution::seq, v.begin(), v.end()) -
                      v.begin());
        EXPECT_EQ(pstlb::max_element(pstlb::execution::par_unseq, v.begin(),
                                     v.end()) -
                      v.begin(),
                  pstlb::max_element(pstlb::execution::seq, v.begin(), v.end()) -
                      v.begin());
      }
      std::vector<std::int64_t> b(v.rbegin(), v.rend());
      std::vector<std::int64_t> out_par(v.size());
      std::vector<std::int64_t> out_seq(v.size());
      pstlb::transform(pstlb::execution::par_unseq, v.begin(), v.end(),
                       b.begin(), out_par.begin(), std::plus<>{});
      pstlb::transform(pstlb::execution::seq, v.begin(), v.end(), b.begin(),
                       out_seq.begin(), std::plus<>{});
      EXPECT_EQ(out_par, out_seq);
      pstlb::transform(pstlb::execution::par_unseq, v.begin(), v.end(),
                       out_par.begin(), std::negate<>{});
      pstlb::transform(pstlb::execution::seq, v.begin(), v.end(),
                       out_seq.begin(), std::negate<>{});
      EXPECT_EQ(out_par, out_seq);
      EXPECT_EQ(pstlb::transform_reduce(pstlb::execution::par_unseq, v.begin(),
                                        v.end(), b.begin(), std::int64_t{0}),
                pstlb::transform_reduce(pstlb::execution::seq, v.begin(),
                                        v.end(), b.begin(), std::int64_t{0}));
    }
  }
}

TEST(SimdPolicy, ParUnseqFloatsWithinReassociationTolerance) {
  isa_guard guard;
  // The documented par_unseq contract: FP sums may reassociate relative to
  // the seq left fold, so results match within accumulation tolerance, not
  // bit-for-bit. This test is the contract's executable documentation.
  const index_t n = 1 << 18;
  std::vector<double> v(static_cast<std::size_t>(n));
  for (index_t i = 0; i < n; ++i) {
    v[static_cast<std::size_t>(i)] =
        (static_cast<double>(i % 1009) - 504.0) * 0.125;
  }
  const double seq_sum = pstlb::reduce(pstlb::execution::seq, v.begin(), v.end());
  for (simd::isa level : runnable_vector_levels()) {
    if (simd::force(level) != level) { continue; }
    const double par_sum =
        pstlb::reduce(pstlb::execution::par_unseq, v.begin(), v.end());
    EXPECT_NEAR(par_sum, seq_sum, 1e-6 * (std::abs(seq_sum) + n));
  }
}

TEST(SimdPolicy, ForcedScalarIsBitIdenticalToSeq) {
  isa_guard guard;
  if (simd::force(simd::isa::scalar) != simd::isa::scalar) {
    GTEST_SKIP() << "cannot force scalar on this build";
  }
  // With the scalar level forced, par_unseq runs the classic leaves, so
  // even float results are bit-identical to a pre-SIMD build's par path.
  const index_t n = 100000;
  std::vector<float> v(static_cast<std::size_t>(n));
  for (index_t i = 0; i < n; ++i) {
    v[static_cast<std::size_t>(i)] = static_cast<float>(i % 97) * 0.25f;
  }
  const float unseq_sum =
      pstlb::reduce(pstlb::execution::unseq, v.begin(), v.end());
  const float seq_sum = pstlb::reduce(pstlb::execution::seq, v.begin(), v.end());
  EXPECT_EQ(unseq_sum, seq_sum);  // bitwise: same left fold
  std::vector<float> out_a(v.size());
  std::vector<float> out_b(v.size());
  pstlb::transform(pstlb::execution::par_unseq, v.begin(), v.end(),
                   out_a.begin(), std::negate<>{});
  pstlb::transform(pstlb::execution::par, v.begin(), v.end(), out_b.begin(),
                   std::negate<>{});
  EXPECT_EQ(out_a, out_b);
}

TEST(SimdPolicy, SamplesortParUnseqSorts) {
  isa_guard guard;
  for (simd::isa level : runnable_vector_levels()) {
    if (simd::force(level) != level) { continue; }
    for (index_t n : {index_t{0}, index_t{1}, index_t{1000}, index_t{100000}}) {
      std::vector<double> v(static_cast<std::size_t>(n));
      std::uint64_t state = 99 + static_cast<std::uint64_t>(level);
      for (auto& x : v) {
        state = state * 6364136223846793005ull + 1442695040888963407ull;
        x = static_cast<double>(state >> 40);
      }
      // Sprinkle infinities: legal float input that may be sampled as a
      // splitter (regression: finite Eytzinger padding misranked keys at
      // or above the type maximum).
      for (std::size_t i = 7; i < v.size(); i += 97) {
        v[i] = (i % 2) != 0 ? std::numeric_limits<double>::infinity()
                            : -std::numeric_limits<double>::infinity();
      }
      auto expect = v;
      std::sort(expect.begin(), expect.end());
      pstlb::sort(pstlb::execution::par_unseq, v.begin(), v.end());
      EXPECT_EQ(v, expect) << "level=" << simd::name(level) << " n=" << n;
    }
  }
}

TEST(SimdPolicy, DispatchReportAndCounters) {
  isa_guard guard;
  for (simd::isa level : runnable_vector_levels()) {
    if (simd::force(level) != level) { continue; }
    const std::uint64_t before = simd::leaf_invocations(level);
    std::vector<std::int32_t> v(4096, 1);
    (void)pstlb::reduce(pstlb::execution::unseq, v.begin(), v.end());
    EXPECT_GT(simd::leaf_invocations(level), before)
        << "vector leaf did not run at " << simd::name(level);
  }
  simd::report_selection();  // must not crash; CI greps its output format
}

TEST(SimdPolicy, UnknownFunctorsAndTypesFallBack) {
  isa_guard guard;
  // A lambda computing plus must NOT vectorize (we cannot see inside it),
  // but must still give the right answer through the classic leaf.
  std::vector<std::int64_t> v(10000);
  std::iota(v.begin(), v.end(), 0);
  const auto lam = [](std::int64_t a, std::int64_t b) { return a + b; };
  EXPECT_EQ(pstlb::reduce(pstlb::execution::par_unseq, v.begin(), v.end(),
                          std::int64_t{0}, lam),
            pstlb::reduce(pstlb::execution::seq, v.begin(), v.end(),
                          std::int64_t{0}, lam));
  // short is outside the closed element set.
  std::vector<short> s(10000, short{1});
  EXPECT_EQ(pstlb::reduce(pstlb::execution::par_unseq, s.begin(), s.end(),
                          0, std::plus<>{}),
            10000);
}

}  // namespace
