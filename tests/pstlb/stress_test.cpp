// Stress and integration tests: concurrent use of the global pools from
// multiple user threads, long repeated-dispatch sequences (pool reuse),
// composition chains across backends, and the first-touch allocator under
// the full algorithm mix.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <numeric>
#include <thread>
#include <vector>

#include "backends/backend_registry.hpp"
#include "bench_core/generators.hpp"
#include "numa/first_touch_allocator.hpp"
#include "pstlb/pstlb.hpp"
#include "support/policies.hpp"

namespace {

using pstlb::index_t;

TEST(Stress, ConcurrentCallersOnAllBackends) {
  // Four user threads each hammer the global pools with mixed algorithms.
  std::atomic<int> failures{0};
  std::vector<std::thread> users;
  for (int u = 0; u < 4; ++u) {
    users.emplace_back([u, &failures] {
      std::vector<long long> v(20000);
      for (std::size_t i = 0; i < v.size(); ++i) {
        v[i] = static_cast<long long>((i * 31 + static_cast<std::size_t>(u)) % 1000);
      }
      const long long expected_sum = std::accumulate(v.begin(), v.end(), 0LL);
      for (int round = 0; round < 25; ++round) {
        auto run_round = [&](auto policy) {
          if (pstlb::reduce(policy, v.begin(), v.end(), 0LL) != expected_sum) {
            failures.fetch_add(1);
          }
          auto copy = v;
          pstlb::sort(policy, copy.begin(), copy.end());
          if (!std::is_sorted(copy.begin(), copy.end())) { failures.fetch_add(1); }
        };
        run_round(pstlb::test::make_eager<pstlb::exec::steal_policy>());
        run_round(pstlb::test::make_eager<pstlb::exec::fork_join_policy>());
        run_round(pstlb::test::make_eager<pstlb::exec::task_policy>());
        run_round(pstlb::test::make_eager<pstlb::exec::omp_dynamic_policy>());
      }
    });
  }
  for (auto& user : users) { user.join(); }
  EXPECT_EQ(failures.load(), 0);
}

TEST(Stress, ManySmallDispatchesReusePools) {
  // 2000 tiny parallel loops: pool threads must be reused, not recreated
  // (CP.41); wrong lifetime management would deadlock or leak visibly here.
  auto pol = pstlb::test::make_eager<pstlb::exec::steal_policy>(4, 8);
  std::vector<int> v(64);
  long long total = 0;
  for (int round = 0; round < 2000; ++round) {
    std::iota(v.begin(), v.end(), round);
    total += pstlb::reduce(pol, v.begin(), v.end(), 0);
  }
  long long expected = 0;
  for (int round = 0; round < 2000; ++round) {
    expected += 64LL * round + 63 * 64 / 2;
  }
  EXPECT_EQ(total, expected);
}

TEST(Stress, CompositionChainAcrossBackends) {
  // A pipeline where each stage uses a different backend must still be
  // correct: the pools are independent and results flow through memory.
  const index_t n = 50000;
  pstlb::exec::steal_policy steal{4};
  pstlb::exec::task_policy futures{4};
  pstlb::exec::fork_join_policy fork{4};
  steal.seq_threshold = futures.seq_threshold = fork.seq_threshold = 0;

  std::vector<double> v(static_cast<std::size_t>(n));
  pstlb::generate(steal, v.begin(), v.end(), [] { return 1.0; });
  std::vector<double> scanned(v.size());
  pstlb::inclusive_scan(futures, v.begin(), v.end(), scanned.begin());
  pstlb::for_each(fork, scanned.begin(), scanned.end(), [](double& x) { x *= 2; });
  const double sum = pstlb::reduce(steal, scanned.begin(), scanned.end());
  // sum of 2*(1..n) = n(n+1)
  EXPECT_DOUBLE_EQ(sum, static_cast<double>(n) * (n + 1));
}

TEST(Stress, FirstTouchAllocatorUnderAlgorithmMix) {
  pstlb::exec::omp_dynamic_policy pol{4};
  pol.seq_threshold = 0;
  auto v = pstlb::bench::generate_increment(pol, 100000);
  pstlb::reverse(pol, v.begin(), v.end());
  EXPECT_EQ(v.front(), 100000.0);
  pstlb::sort(pol, v.begin(), v.end());
  EXPECT_TRUE(pstlb::is_sorted(pol, v.begin(), v.end()));
  const auto mid = pstlb::find(pol, v.begin(), v.end(), 50000.0);
  ASSERT_NE(mid, v.end());
  EXPECT_EQ(mid - v.begin(), 49999);
}

TEST(Stress, AlternatingThreadCounts) {
  // Policies with varying thread counts against the same pools.
  std::vector<long long> v(30000);
  std::iota(v.begin(), v.end(), 0);
  const long long expected = 29999LL * 30000 / 2;
  for (unsigned t : {1u, 2u, 7u, 3u, 8u, 1u, 5u}) {
    pstlb::exec::steal_policy pol{t};
    pol.seq_threshold = 0;
    EXPECT_EQ(pstlb::reduce(pol, v.begin(), v.end(), 0LL), expected) << t;
    pstlb::exec::task_policy fut{t};
    fut.seq_threshold = 0;
    EXPECT_EQ(pstlb::count_if(fut, v.begin(), v.end(),
                              [](long long x) { return x % 2 == 0; }),
              15000)
        << t;
  }
}

TEST(Stress, LargeSortAllBackends) {
  const index_t n = 1 << 19;
  for (pstlb::backends::backend_id id : pstlb::backends::parallel_backends()) {
    pstlb::backends::with_policy(id, 4, [&](auto policy) {
      if constexpr (pstlb::exec::ParallelPolicy<decltype(policy)>) {
        policy.seq_threshold = 0;
      }
      auto v = pstlb::bench::shuffled_permutation(n, 99);
      pstlb::sort(policy, v.begin(), v.end());
      EXPECT_TRUE(std::is_sorted(v.begin(), v.end()))
          << pstlb::backends::name_of(id);
      EXPECT_EQ(v.front(), 1.0);
      EXPECT_EQ(v.back(), static_cast<double>(n));
      return 0;
    });
  }
}

}  // namespace
