// Value-type coverage: the algorithms must work for the paper's element
// types (double, float — Section 3.2 / Section 5.8) and for non-trivial
// user types (strings, aggregates with invariants).
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <memory>
#include <numeric>
#include <stdexcept>
#include <string>
#include <vector>

#include "pstlb/pstlb.hpp"
#include "support/policies.hpp"

namespace {

using pstlb::index_t;

template <class T>
std::vector<T> numeric_input(index_t n) {
  std::vector<T> v(static_cast<std::size_t>(n));
  for (index_t i = 0; i < n; ++i) {
    v[static_cast<std::size_t>(i)] = static_cast<T>((i * 17 + 3) % 997);
  }
  return v;
}

template <class T>
class NumericTypes : public ::testing::Test {};

using ElementTypes = ::testing::Types<float, double, std::int32_t, std::int64_t,
                                      std::uint16_t>;
TYPED_TEST_SUITE(NumericTypes, ElementTypes);

TYPED_TEST(NumericTypes, ReduceSortScanRoundTrip) {
  auto pol = pstlb::test::make_eager<pstlb::exec::steal_policy>();
  auto v = numeric_input<TypeParam>(20000);

  const auto expected_sum = std::accumulate(v.begin(), v.end(), TypeParam{});
  EXPECT_EQ(pstlb::reduce(pol, v.begin(), v.end(), TypeParam{}), expected_sum);

  pstlb::sort(pol, v.begin(), v.end());
  EXPECT_TRUE(std::is_sorted(v.begin(), v.end()));

  std::vector<TypeParam> scanned(v.size());
  pstlb::inclusive_scan(pol, v.begin(), v.end(), scanned.begin());
  EXPECT_EQ(scanned.back(), expected_sum);
}

TYPED_TEST(NumericTypes, FindAndCount) {
  auto pol = pstlb::test::make_eager<pstlb::exec::omp_dynamic_policy>();
  auto v = numeric_input<TypeParam>(30000);
  v[12345] = TypeParam{998};
  EXPECT_EQ(pstlb::find(pol, v.begin(), v.end(), TypeParam{998}) - v.begin(), 12345);
  EXPECT_EQ(pstlb::count(pol, v.begin(), v.end(), TypeParam{998}), 1);
}

TEST(StringValues, SortAndUnique) {
  auto pol = pstlb::test::make_eager<pstlb::exec::task_policy>();
  std::vector<std::string> v;
  for (int i = 0; i < 10000; ++i) {
    v.push_back("key-" + std::to_string((i * 7919) % 500));
  }
  auto expected = v;
  std::sort(expected.begin(), expected.end());
  pstlb::sort(pol, v.begin(), v.end());
  EXPECT_EQ(v, expected);

  auto end = pstlb::unique(pol, v.begin(), v.end());
  auto expected_end = std::unique(expected.begin(), expected.end());
  EXPECT_EQ(end - v.begin(), expected_end - expected.begin());
}

struct account {
  int id = 0;
  double balance = 0;
  friend bool operator==(const account&, const account&) = default;
};

TEST(AggregateValues, TransformReducePartition) {
  auto pol = pstlb::test::make_eager<pstlb::exec::fork_join_policy>();
  std::vector<account> accounts;
  for (int i = 0; i < 25000; ++i) {
    accounts.push_back({i, static_cast<double>((i * 31) % 1000) - 200.0});
  }
  const double total = pstlb::transform_reduce(
      pol, accounts.begin(), accounts.end(), 0.0, std::plus<>{},
      [](const account& a) { return a.balance; });
  double expected = 0;
  for (const auto& a : accounts) { expected += a.balance; }
  EXPECT_DOUBLE_EQ(total, expected);

  auto overdrawn = [](const account& a) { return a.balance < 0; };
  const auto count =
      pstlb::count_if(pol, accounts.begin(), accounts.end(), overdrawn);
  auto boundary =
      pstlb::stable_partition(pol, accounts.begin(), accounts.end(), overdrawn);
  EXPECT_EQ(boundary - accounts.begin(), count);
  EXPECT_TRUE(std::all_of(accounts.begin(), boundary, overdrawn));
  // Stability: ids still ascending within each side.
  EXPECT_TRUE(std::is_sorted(accounts.begin(), boundary,
                             [](const account& a, const account& b) {
                               return a.id < b.id;
                             }));
  EXPECT_TRUE(std::is_sorted(boundary, accounts.end(),
                             [](const account& a, const account& b) {
                               return a.id < b.id;
                             }));
}

TEST(MoveOnlyish, SortOfHeavyValuesMovesNotCopies) {
  // Values with observable copy/move counters: parallel sort must not lose
  // or duplicate payloads.
  struct heavy {
    std::string payload;
    int key = 0;
  };
  auto pol = pstlb::test::make_eager<pstlb::exec::steal_policy>();
  std::vector<heavy> v;
  for (int i = 0; i < 5000; ++i) {
    v.push_back({std::string(50, static_cast<char>('a' + i % 26)), (i * 733) % 5000});
  }
  pstlb::sort(pol, v.begin(), v.end(),
              [](const heavy& a, const heavy& b) { return a.key < b.key; });
  EXPECT_TRUE(std::is_sorted(v.begin(), v.end(), [](const heavy& a, const heavy& b) {
    return a.key < b.key;
  }));
  // All payloads intact (none moved-from/empty).
  EXPECT_TRUE(std::all_of(v.begin(), v.end(),
                          [](const heavy& h) { return h.payload.size() == 50; }));
}

TEST(MoveOnly, SortFallsBackToMergesortPipeline) {
  // Samplesort needs copy-constructible values (materialized splitters);
  // move-only types must silently take the mergesort pipeline — even when
  // the policy demands samplesort — and still sort correctly.
  struct move_only {
    std::unique_ptr<int> p;
    move_only() = default;
    explicit move_only(int v) : p(std::make_unique<int>(v)) {}
    move_only(move_only&&) = default;
    move_only& operator=(move_only&&) = default;
  };
  auto pol = pstlb::test::make_eager<pstlb::exec::steal_policy>();
  pol.sort = pstlb::exec::sort_path::sample;
  std::vector<move_only> v;
  for (int i = 0; i < 20000; ++i) { v.emplace_back((i * 733) % 9973); }
  auto less = [](const move_only& a, const move_only& b) { return *a.p < *b.p; };
  pstlb::sort(pol, v.begin(), v.end(), less);
  EXPECT_TRUE(std::is_sorted(v.begin(), v.end(), less));
  EXPECT_TRUE(std::all_of(v.begin(), v.end(),
                          [](const move_only& m) { return m.p != nullptr; }));
}

// Copy constructor that throws on a schedule (local classes cannot hold the
// static counters). Armed only inside the test below.
struct flaky {
  int key = 0;
  static inline std::atomic<int> copies{0};
  static inline std::atomic<bool> arm{false};
  flaky() = default;
  explicit flaky(int k) : key(k) {}
  flaky(const flaky& o) : key(o.key) {
    if (arm.load() && copies.fetch_add(1) % 197 == 196) {
      throw std::runtime_error("copy failed");
    }
  }
  flaky& operator=(const flaky&) = default;
  flaky(flaky&&) = default;
  flaky& operator=(flaky&&) = default;
};

TEST(ThrowingCopy, SamplesortSurvivesSplitterCopyThrow) {
  // Splitter sampling copies elements; a copy constructor that throws must
  // propagate as exactly one exception, not hang or crash the pipeline.
  auto pol = pstlb::test::make_eager<pstlb::exec::steal_policy>();
  pol.sort = pstlb::exec::sort_path::sample;
  std::vector<flaky> v;
  for (int i = 0; i < 30000; ++i) { v.emplace_back((i * 419) % 10007); }
  flaky::arm.store(true);
  int caught = 0;
  for (int attempt = 0; attempt < 3; ++attempt) {
    try {
      pstlb::sort(pol, v.begin(), v.end(),
                  [](const flaky& a, const flaky& b) { return a.key < b.key; });
    } catch (const std::runtime_error&) {
      ++caught;
    }
  }
  flaky::arm.store(false);
  EXPECT_GT(caught, 0);  // the sampling pass makes >197 copies per sort
  pstlb::sort(pol, v.begin(), v.end(),
              [](const flaky& a, const flaky& b) { return a.key < b.key; });
  EXPECT_TRUE(std::is_sorted(v.begin(), v.end(), [](const flaky& a, const flaky& b) {
    return a.key < b.key;
  }));
}

}  // namespace
