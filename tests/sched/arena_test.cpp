// Arena admission-control unit tests: grant clamping, the cap<=1 sequential
// floor, bounded-queue saturation shedding, soft-deadline shedding, token
// conservation under concurrent admits, re-entrant admission on the holding
// thread, and the nested-run task protocol (owner drains, helpers assist,
// every chunk exactly once).
#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

#include "sched/arena.hpp"
#include "sched/loop_context.hpp"

namespace {

using pstlb::index_t;
using pstlb::sched::admit_outcome;
using pstlb::sched::arena;
using pstlb::sched::loop_context;
using pstlb::sched::shed_reason;

arena::config cfg(unsigned cap, unsigned max_pending = 64,
                  unsigned deadline_ms = 0) {
  arena::config c;
  c.name = "test";
  c.cap = cap;
  c.max_pending = max_pending;
  c.deadline_ms = deadline_ms;
  return c;
}

TEST(Arena, GrantIsClampedToCapAndAtLeastTwo) {
  arena a(cfg(8));
  auto t = a.admit(16);
  EXPECT_EQ(t.outcome(), admit_outcome::parallel);
  EXPECT_GE(t.granted(), 2u);
  EXPECT_LE(t.granted(), 8u);
}

TEST(Arena, ElasticArenaGivesLoneCallerFullRequest) {
  // Elastic arenas (the default-arena mode) never trim an uncontended
  // caller: even a cap-1 arena on a 1-core host must grant the requested
  // width, matching the pre-arena oversubscription behaviour.
  auto c = cfg(1, /*max_pending=*/64, /*deadline_ms=*/10);
  c.elastic = true;
  arena a(std::move(c));
  {
    auto t = a.admit(8);
    EXPECT_EQ(t.outcome(), admit_outcome::parallel);
    EXPECT_EQ(t.granted(), 8u);
    // A concurrent caller contends and is trimmed/queued against the cap:
    // with every token held and a 10ms deadline it sheds rather than hangs.
    admit_outcome outcome{};
    std::thread caller([&] { outcome = a.admit(8).outcome(); });
    caller.join();
    EXPECT_EQ(outcome, admit_outcome::shed_deadline);
  }
  // Idle again: the next caller is uncontended and elastic once more, and
  // the ticket returned exactly the tokens it charged.
  auto t2 = a.admit(4);
  EXPECT_EQ(t2.granted(), 4u);
  { auto drop = std::move(t2); }
  const auto s = a.snapshot();
  EXPECT_EQ(s.admitted, s.completed);
}

TEST(Arena, ElasticWaiterGetsFullWidthOnceIdle) {
  auto c = cfg(2);
  c.elastic = true;
  arena a(std::move(c));
  auto holder = a.admit(2);
  ASSERT_TRUE(holder.parallel());
  std::atomic<unsigned> width{0};
  std::thread caller([&] {
    auto t = a.admit(16);  // queues: all tokens held
    width.store(t.granted());
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(10));
  EXPECT_EQ(width.load(), 0u);
  { auto drop = std::move(holder); }  // arena goes idle -> head waiter
  caller.join();
  EXPECT_EQ(width.load(), 16u);  // uncontended again: full request
}

TEST(Arena, CapOneMakesEveryCallSequential) {
  arena a(cfg(1));
  auto t = a.admit(8);
  EXPECT_EQ(t.outcome(), admit_outcome::sequential_cap);
  EXPECT_FALSE(t.parallel());
  EXPECT_EQ(a.snapshot().sequential_cap, 1u);
}

TEST(Arena, RequestOfOneIsSequential) {
  arena a(cfg(8));
  auto t = a.admit(1);
  EXPECT_EQ(t.outcome(), admit_outcome::sequential_cap);
}

TEST(Arena, FullQueueShedsToSequential) {
  arena a(cfg(2, /*max_pending=*/0));
  auto holder = a.admit(2);
  ASSERT_TRUE(holder.parallel());
  // Admission runs on another thread: the holding thread would take the
  // re-entrant bypass instead of the queue.
  admit_outcome outcome{};
  std::thread caller([&] { outcome = a.admit(2).outcome(); });
  caller.join();
  EXPECT_EQ(outcome, admit_outcome::shed_saturated);
  EXPECT_EQ(a.snapshot().shed_saturated, 1u);
  EXPECT_GE(arena::global_shed_count(), 1u);
}

TEST(Arena, DeadlineExpiryShedsInsteadOfHanging) {
  arena a(cfg(2, /*max_pending=*/8, /*deadline_ms=*/20));
  auto holder = a.admit(2);
  ASSERT_TRUE(holder.parallel());
  admit_outcome outcome{};
  std::thread caller([&] { outcome = a.admit(2).outcome(); });
  caller.join();  // must return: the deadline bounds the wait
  EXPECT_EQ(outcome, admit_outcome::shed_deadline);
  EXPECT_EQ(a.snapshot().shed_deadline, 1u);
}

TEST(Arena, WaiterIsGrantedWhenTokensFree) {
  arena a(cfg(2, 8, /*deadline_ms=*/0));
  auto holder = a.admit(2);
  ASSERT_TRUE(holder.parallel());
  std::atomic<bool> granted{false};
  std::thread caller([&] {
    auto t = a.admit(2);  // blocks until the holder releases
    granted.store(t.parallel());
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(10));
  EXPECT_FALSE(granted.load());
  { auto drop = std::move(holder); }  // release tokens
  caller.join();
  EXPECT_TRUE(granted.load());
  const auto s = a.snapshot();
  EXPECT_EQ(s.admitted, 2u);
  EXPECT_EQ(s.completed, 2u);
  EXPECT_GE(s.peak_pending, 1u);
}

TEST(Arena, TokensAreConservedUnderConcurrentChurn) {
  arena a(cfg(8, 128));
  std::atomic<int> violations{0};
  std::vector<std::thread> callers;
  for (int u = 0; u < 16; ++u) {
    callers.emplace_back([&] {
      for (int round = 0; round < 50; ++round) {
        auto t = a.admit(4);
        if (!t.parallel()) { continue; }
        if (t.granted() < 2 || t.granted() > 8) { violations.fetch_add(1); }
        std::this_thread::yield();
      }
    });
  }
  for (auto& c : callers) { c.join(); }
  EXPECT_EQ(violations.load(), 0);
  const auto s = a.snapshot();
  EXPECT_EQ(s.admitted, s.completed);
  // All tokens returned: a fresh admit gets the full fair share again.
  auto t = a.admit(8);
  ASSERT_TRUE(t.parallel());
  EXPECT_EQ(t.granted(), 8u);
}

TEST(Arena, ReentrantAdmitOnHoldingThreadCannotDeadlock) {
  arena a(cfg(4, /*max_pending=*/0));  // queue bound 0: any wait would shed
  auto outer = a.admit(4);
  ASSERT_TRUE(outer.parallel());
  // Same thread, tokens all held by `outer`: a queued second admission
  // would deadlock (nobody can release) or shed. The re-entrant bypass
  // must ride the outer grant instead.
  auto inner = a.admit(4);
  EXPECT_TRUE(inner.parallel());
  EXPECT_LE(inner.granted(), outer.granted());
  { auto drop = std::move(inner); }
  // Inner release must not return the outer's tokens.
  const auto s = a.snapshot();
  EXPECT_EQ(s.completed, 0u);
}

TEST(Arena, NestedRunExecutesEveryChunkExactlyOnce) {
  arena a(cfg(8));
  const index_t n = 1000;
  std::vector<std::atomic<int>> hits(static_cast<std::size_t>(n));
  loop_context ctx;
  ctx.n = n;
  ctx.grain = 7;
  ctx.state = &hits;
  ctx.run = [](void* state, index_t b, index_t e, unsigned) {
    auto& h = *static_cast<std::vector<std::atomic<int>>*>(state);
    for (index_t i = b; i < e; ++i) {
      h[static_cast<std::size_t>(i)].fetch_add(1);
    }
  };
  a.run_nested(ctx);
  for (const auto& h : hits) { ASSERT_EQ(h.load(), 1); }
  EXPECT_EQ(a.snapshot().nested_runs, 1u);
}

TEST(Arena, HelpersDrainNestedChunksWithoutDuplication) {
  arena a(cfg(8));
  const index_t n = 200000;
  std::vector<std::atomic<int>> hits(static_cast<std::size_t>(n));
  loop_context ctx;
  ctx.n = n;
  ctx.grain = 64;
  ctx.state = &hits;
  ctx.run = [](void* state, index_t b, index_t e, unsigned) {
    auto& h = *static_cast<std::vector<std::atomic<int>>*>(state);
    for (index_t i = b; i < e; ++i) {
      h[static_cast<std::size_t>(i)].fetch_add(1);
    }
  };
  std::atomic<bool> stop{false};
  std::vector<std::thread> helpers;
  for (int i = 0; i < 4; ++i) {
    helpers.emplace_back([&] {
      while (!stop.load()) {
        if (!a.try_help_nested()) { std::this_thread::yield(); }
      }
    });
  }
  a.run_nested(ctx);
  stop.store(true);
  for (auto& h : helpers) { h.join(); }
  for (const auto& h : hits) { ASSERT_EQ(h.load(), 1); }
}

TEST(Arena, NoteDegradationAttributesToBoundArena) {
  arena a(cfg(8));
  {
    arena::scoped_bind bind(&a);
    pstlb::sched::note_degradation(shed_reason::oom);
  }
  EXPECT_EQ(a.snapshot().shed_oom, 1u);
  // Unbound sheds land in the process-wide counter only.
  const auto before = arena::global_shed_count();
  pstlb::sched::note_degradation(shed_reason::spawnfail);
  EXPECT_EQ(arena::global_shed_count(), before + 1);
  EXPECT_EQ(a.snapshot().shed_spawnfail, 0u);
}

TEST(Arena, AdmissionToggleControlsTarget) {
  const bool was_enabled = arena::admission_enabled();
  arena::set_admission_enabled(false);
  EXPECT_EQ(arena::admission_target(), nullptr);
  arena::set_admission_enabled(true);
  EXPECT_EQ(arena::admission_target(), &arena::default_arena());
  // A thread-bound arena wins over the default regardless of the toggle.
  arena a(cfg(4));
  {
    arena::scoped_bind bind(&a);
    EXPECT_EQ(arena::admission_target(), &a);
  }
  arena::set_admission_enabled(was_enabled);
}

TEST(Arena, SnapshotQuantilesComeFromTheCallHistogram) {
  pstlb::sched::arena_snapshot s;
  EXPECT_EQ(s.p50_ns(), 0.0);  // no samples
  s.call_hist[10] = 90;        // 90 calls in [1024, 2048) ns
  s.call_hist[20] = 10;        // 10 calls in [2^20, 2^21) ns
  EXPECT_EQ(s.p50_ns(), 1024.0);
  EXPECT_EQ(s.p99_ns(), static_cast<double>(1u << 20));
}

}  // namespace
