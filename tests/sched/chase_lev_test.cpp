// Chase-Lev deque: sequential semantics and a multi-thief stress test that
// checks every pushed item is consumed exactly once (linearizability of the
// take/steal protocol for our usage pattern).
#include "sched/chase_lev_deque.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <thread>
#include <vector>

namespace pstlb::sched {
namespace {

TEST(ChaseLevDeque, StartsEmpty) {
  chase_lev_deque<std::uint64_t> deque;
  EXPECT_TRUE(deque.empty_approx());
  EXPECT_EQ(deque.pop(), std::nullopt);
  EXPECT_EQ(deque.steal(), std::nullopt);
}

TEST(ChaseLevDeque, LifoForOwner) {
  chase_lev_deque<std::uint64_t> deque;
  deque.push(1);
  deque.push(2);
  deque.push(3);
  EXPECT_EQ(deque.pop(), 3u);
  EXPECT_EQ(deque.pop(), 2u);
  EXPECT_EQ(deque.pop(), 1u);
  EXPECT_EQ(deque.pop(), std::nullopt);
}

TEST(ChaseLevDeque, FifoForThief) {
  chase_lev_deque<std::uint64_t> deque;
  deque.push(1);
  deque.push(2);
  deque.push(3);
  EXPECT_EQ(deque.steal(), 1u);
  EXPECT_EQ(deque.steal(), 2u);
  EXPECT_EQ(deque.steal(), 3u);
  EXPECT_EQ(deque.steal(), std::nullopt);
}

TEST(ChaseLevDeque, OwnerAndThiefInterleaved) {
  chase_lev_deque<std::uint64_t> deque;
  for (std::uint64_t i = 0; i < 10; ++i) { deque.push(i); }
  EXPECT_EQ(deque.steal(), 0u);   // oldest from the top
  EXPECT_EQ(deque.pop(), 9u);     // newest from the bottom
  EXPECT_EQ(deque.size_approx(), 8u);
}

TEST(ChaseLevDeque, GrowsPastInitialCapacity) {
  chase_lev_deque<std::uint64_t> deque(4);
  constexpr std::uint64_t kCount = 10000;
  for (std::uint64_t i = 0; i < kCount; ++i) { deque.push(i); }
  EXPECT_EQ(deque.size_approx(), kCount);
  for (std::uint64_t i = kCount; i-- > 0;) { EXPECT_EQ(deque.pop(), i); }
}

TEST(ChaseLevDequeStress, EveryItemConsumedExactlyOnce) {
  constexpr int kItems = 200000;
  constexpr int kThieves = 3;
  chase_lev_deque<std::uint64_t> deque;
  std::vector<std::atomic<int>> seen(kItems);

  std::atomic<bool> done{false};
  std::atomic<int> consumed{0};
  auto consume = [&](std::uint64_t v) {
    seen[static_cast<std::size_t>(v)].fetch_add(1, std::memory_order_relaxed);
    consumed.fetch_add(1, std::memory_order_relaxed);
  };

  std::vector<std::thread> thieves;
  thieves.reserve(kThieves);
  for (int t = 0; t < kThieves; ++t) {
    thieves.emplace_back([&] {
      while (!done.load(std::memory_order_acquire) ||
             consumed.load(std::memory_order_relaxed) < kItems) {
        if (auto item = deque.steal()) { consume(*item); }
      }
    });
  }

  // Owner: pushes in batches, pops some of its own.
  std::uint64_t next = 0;
  while (next < kItems) {
    const std::uint64_t batch = std::min<std::uint64_t>(64, kItems - next);
    for (std::uint64_t i = 0; i < batch; ++i) { deque.push(next++); }
    for (int i = 0; i < 16; ++i) {
      if (auto item = deque.pop()) { consume(*item); }
    }
  }
  while (auto item = deque.pop()) { consume(*item); }
  done.store(true, std::memory_order_release);
  for (auto& thief : thieves) { thief.join(); }

  ASSERT_EQ(consumed.load(), kItems);
  for (int i = 0; i < kItems; ++i) {
    EXPECT_EQ(seen[static_cast<std::size_t>(i)].load(), 1) << "item " << i;
  }
}

}  // namespace
}  // namespace pstlb::sched
