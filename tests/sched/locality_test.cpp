#include "sched/locality.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <stdexcept>
#include <vector>

#include "numa/page_registry.hpp"
#include "numa/topology.hpp"
#include "sched/steal_pool.hpp"

namespace pstlb::sched {
namespace {

numa::topology_tree spec(const char* s) {
  auto t = numa::parse_topology_spec(s);
  EXPECT_TRUE(t.has_value()) << s;
  return *t;
}

// ------------------------------------------------------------- locality plans

TEST(LocalityPlan, VictimOrderIsLlcThenNodeThenRemote) {
  // 2 nodes x 2 LLCs x 2 cores: cpus 0-3 on node 0 (LLC 0: 0,1; LLC 1: 2,3),
  // cpus 4-7 on node 1. Identity worker->cpu mapping at 8 participants.
  const auto plan = make_locality_plan(spec("2x2x2"), 8);
  ASSERT_TRUE(plan.active());
  EXPECT_EQ(plan.groups, 2u);
  EXPECT_EQ(plan.node_of,
            (std::vector<unsigned>{0, 0, 0, 0, 1, 1, 1, 1}));
  // Worker 0: LLC buddy first, node buddies next, remote last.
  EXPECT_EQ(plan.victims[0],
            (std::vector<unsigned>{1, 2, 3, 4, 5, 6, 7}));
  // Worker 3: tiers are {2} / {0, 1} / {4..7}; within a tier, rotation order
  // starting at t+1 (so the remote tier keeps its natural 4,5,6,7 order).
  EXPECT_EQ(plan.victims[3],
            (std::vector<unsigned>{2, 0, 1, 4, 5, 6, 7}));
  // Worker 4 (first cpu of node 1) mirrors worker 0 shifted by a node.
  EXPECT_EQ(plan.victims[4],
            (std::vector<unsigned>{5, 6, 7, 0, 1, 2, 3}));
}

TEST(LocalityPlan, FewerParticipantsThanCpusSpreadAcrossNodes) {
  // 4 workers on 8 cpus: worker t sits on cpu 2t -> nodes {0, 0, 1, 1}.
  const auto plan = make_locality_plan(spec("2x2x2"), 4);
  ASSERT_TRUE(plan.active());
  EXPECT_EQ(plan.node_of, (std::vector<unsigned>{0, 0, 1, 1}));
  EXPECT_EQ(plan.leader_of, (std::vector<unsigned>{0, 2}));
}

TEST(LocalityPlan, SingleNodeIsInactive) {
  const auto plan = make_locality_plan(numa::flat_tree(8), 8);
  EXPECT_FALSE(plan.active());
  EXPECT_EQ(plan.groups, 1u);
}

TEST(LocalityPlan, MoreParticipantsThanCpusStillCovered) {
  const auto plan = make_locality_plan(spec("2x1x2"), 16);
  EXPECT_EQ(plan.participants, 16u);
  EXPECT_TRUE(plan.active());
  for (unsigned t = 0; t < 16; ++t) {
    EXPECT_EQ(plan.victims[t].size(), 15u);
    EXPECT_LT(plan.node_of[t], 2u);
  }
}

// --------------------------------------------------------------- chunk seeds

loop_context make_ctx(index_t n, index_t grain) {
  loop_context ctx;
  ctx.n = n;
  ctx.grain = grain;
  ctx.run = [](void*, index_t, index_t, unsigned) {};
  return ctx;
}

TEST(ChunkSeeds, ExplicitHomeMapGroupsRuns) {
  const auto plan = make_locality_plan(spec("2x2x2"), 4);  // leaders {0, 2}
  loop_context ctx = make_ctx(80, 10);  // 8 chunks
  ctx.chunk_home = [](const void*, index_t c) -> unsigned {
    return c < 4 ? 0u : 1u;
  };
  const auto seeds = plan_chunk_seeds(ctx, plan, 8);
  ASSERT_EQ(seeds.size(), 2u);
  EXPECT_EQ(seeds[0].tid, 0u);
  EXPECT_EQ(seeds[0].begin, 0u);
  EXPECT_EQ(seeds[0].end, 4u);
  EXPECT_EQ(seeds[1].tid, 2u);
  EXPECT_EQ(seeds[1].begin, 4u);
  EXPECT_EQ(seeds[1].end, 8u);
}

TEST(ChunkSeeds, UnknownNodeFallsBackToCallerGroup) {
  const auto plan = make_locality_plan(spec("2x2x2"), 4);
  loop_context ctx = make_ctx(40, 10);
  ctx.chunk_home = [](const void*, index_t) -> unsigned { return 99u; };
  const auto seeds = plan_chunk_seeds(ctx, plan, 4);
  ASSERT_EQ(seeds.size(), 1u);
  EXPECT_EQ(seeds[0].tid, 0u);
  EXPECT_EQ(seeds[0].end, 4u);
}

TEST(ChunkSeeds, NoPlacementInfoSeedsEverythingToCaller) {
  const auto plan = make_locality_plan(spec("2x2x2"), 4);
  const auto seeds = plan_chunk_seeds(make_ctx(80, 10), plan, 8);
  ASSERT_EQ(seeds.size(), 1u);
  EXPECT_EQ(seeds[0].tid, 0u);
  EXPECT_EQ(seeds[0].begin, 0u);
  EXPECT_EQ(seeds[0].end, 8u);
}

TEST(ChunkSeeds, PageRegistryDrivesAssignment) {
  // Fake allocation: 4 page-sized slices parallel-touched by 4 workers.
  const std::size_t page = numa::topology().page_size;
  const std::size_t bytes = 4 * page;
  alignas(64) static char fake;  // registry keys by pointer only
  numa::page_registry::instance().record(
      &fake, {bytes, numa::placement::parallel_touch, 4});

  const auto plan = make_locality_plan(spec("2x1x2"), 4);  // nodes {0,0,1,1}
  scoped_data_hint hint(&fake, 1);  // 1 byte per index
  loop_context ctx = make_ctx(static_cast<index_t>(bytes),
                              static_cast<index_t>(page));
  const auto seeds = plan_chunk_seeds(ctx, plan, 4);
  numa::page_registry::instance().erase(&fake);

  // Pages 0,1 were touched by workers 0,1 (node 0); pages 2,3 by workers
  // 2,3 (node 1). Leaders are 0 and 2.
  ASSERT_EQ(seeds.size(), 2u);
  EXPECT_EQ(seeds[0].tid, 0u);
  EXPECT_EQ(seeds[0].begin, 0u);
  EXPECT_EQ(seeds[0].end, 2u);
  EXPECT_EQ(seeds[1].tid, 2u);
  EXPECT_EQ(seeds[1].begin, 2u);
  EXPECT_EQ(seeds[1].end, 4u);
}

TEST(HomeNode, SequentialTouchStaysWithCaller) {
  const auto plan = make_locality_plan(spec("2x1x2"), 4);
  numa::allocation_info info{1 << 20, numa::placement::sequential_touch, 1};
  EXPECT_EQ(home_node_of(info, 0, plan), plan.node_of[0]);
  EXPECT_EQ(home_node_of(info, (1 << 20) - 1, plan), plan.node_of[0]);
}

// ----------------------------------------------------- steal pool integration

class StealLocalityEnv : public ::testing::Test {
 protected:
  void SetUp() override {
    ::setenv("PSTLB_TOPOLOGY", "2x1x2", 1);
    ::setenv("PSTLB_STEAL_LOCALITY", "1", 1);
  }
  void TearDown() override {
    ::unsetenv("PSTLB_TOPOLOGY");
    ::unsetenv("PSTLB_STEAL_LOCALITY");
  }
};

TEST_F(StealLocalityEnv, CoverageWithLocalityPlan) {
  steal_pool pool(3);
  const int n = 10000;
  std::vector<std::atomic<int>> hits(n);
  loop_context ctx;
  ctx.n = n;
  ctx.grain = 16;
  ctx.state = &hits;
  ctx.run = [](void* state, index_t b, index_t e, unsigned) {
    auto& h = *static_cast<std::vector<std::atomic<int>>*>(state);
    for (index_t i = b; i < e; ++i) { h[static_cast<std::size_t>(i)].fetch_add(1); }
  };
  // Explicit home map: split the index space across both nodes.
  ctx.chunk_home = [](const void*, index_t c) -> unsigned {
    return c % 2 == 0 ? 0u : 1u;
  };
  for (int round = 0; round < 10; ++round) {
    pool.run(4, ctx);
    for (int i = 0; i < n; ++i) {
      ASSERT_EQ(hits[static_cast<std::size_t>(i)].load(), round + 1)
          << "index " << i;
    }
  }
}

TEST_F(StealLocalityEnv, DisableKnobFallsBackToUniform) {
  ::setenv("PSTLB_STEAL_LOCALITY", "0", 1);
  EXPECT_FALSE(steal_locality_enabled());
  steal_pool pool(3);
  std::atomic<long> sum{0};
  loop_context ctx;
  ctx.n = 1000;
  ctx.grain = 8;
  ctx.state = &sum;
  ctx.run = [](void* state, index_t b, index_t e, unsigned) {
    long local = 0;
    for (index_t i = b; i < e; ++i) { local += i; }
    static_cast<std::atomic<long>*>(state)->fetch_add(local);
  };
  pool.run(4, ctx);
  EXPECT_EQ(sum.load(), 999L * 1000 / 2);
}

TEST_F(StealLocalityEnv, ExactlyOneExceptionOnLocalityPath) {
  steal_pool pool(3);
  std::atomic<int> throws{0};
  loop_context ctx;
  ctx.n = 10000;
  ctx.grain = 16;
  ctx.state = &throws;
  ctx.run = [](void* state, index_t b, index_t e, unsigned) {
    for (index_t i = b; i < e; ++i) {
      if (i == 4321) {
        static_cast<std::atomic<int>*>(state)->fetch_add(1);
        throw std::runtime_error("locality boom");
      }
    }
  };
  ctx.chunk_home = [](const void*, index_t c) -> unsigned {
    return c % 2 == 0 ? 0u : 1u;
  };
  for (int round = 0; round < 5; ++round) {
    throws.store(0);
    try {
      pool.run(4, ctx);
      FAIL() << "expected runtime_error";
    } catch (const std::runtime_error& e) {
      EXPECT_STREQ(e.what(), "locality boom");
    }
    EXPECT_EQ(throws.load(), 1);
  }
}

}  // namespace
}  // namespace pstlb::sched
