// Partial-startup cleanup: when a pool constructor's Nth std::thread spawn
// throws, the already-started workers must be stopped and joined before the
// exception escapes (a joinable std::thread destructor terminates the
// process), and a failed ensure() must leave the pool fully usable.
// PSTLB_FAULT=spawnfail drives every path deterministically.
#include <gtest/gtest.h>

#include <atomic>
#include <system_error>

#include "pstlb/fault.hpp"
#include "sched/steal_pool.hpp"
#include "sched/task_queue_pool.hpp"
#include "sched/thread_pool.hpp"

namespace {

namespace fault = pstlb::fault;
using pstlb::sched::loop_context;

class SpawnFailure : public ::testing::Test {
 protected:
  void TearDown() override { fault::set(fault::spec{}); }
};

TEST_F(SpawnFailure, ThreadPoolConstructorCleansUpAndThrows) {
  fault::set("spawnfail");
  EXPECT_THROW(pstlb::sched::thread_pool(4, "spawn_test"), std::system_error);
  // If the partial workers were leaked joinable, the THROW above would have
  // std::terminate'd instead of reaching this line.
  fault::set(fault::spec{});
  pstlb::sched::thread_pool pool(2, "spawn_test_ok");
  EXPECT_EQ(pool.worker_count(), 2u);
}

TEST_F(SpawnFailure, TaskQueuePoolConstructorCleansUpAndThrows) {
  fault::set("spawnfail");
  EXPECT_THROW(pstlb::sched::task_queue_pool(4), std::system_error);
  fault::set(fault::spec{});
  pstlb::sched::task_queue_pool pool(2);
  EXPECT_EQ(pool.worker_count(), 2u);
}

TEST_F(SpawnFailure, StealPoolConstructorCleansUpAndThrows) {
  fault::set("spawnfail");
  EXPECT_THROW(pstlb::sched::steal_pool(4), std::system_error);
}

TEST_F(SpawnFailure, FailedEnsureLeavesThreadPoolUsable) {
  pstlb::sched::thread_pool pool(1, "ensure_test");
  fault::set("spawnfail");
  EXPECT_THROW(pool.ensure(4), std::system_error);
  fault::set(fault::spec{});
  // Strong guarantee: the original worker survived the failed growth and
  // regions still execute (growing further now also works).
  std::atomic<unsigned> ran{0};
  pool.run(2, [&](unsigned, unsigned) { ran.fetch_add(1); });
  EXPECT_EQ(ran.load(), 2u);
}

TEST_F(SpawnFailure, TransientFailureIsAbsorbedByRetry) {
  // spawnfail:2 fails only the first two std::thread spawns; the bounded
  // exponential-backoff retry (3 attempts per worker) must absorb them and
  // deliver a fully-populated pool.
  fault::set("spawnfail:2");
  pstlb::sched::thread_pool pool(4, "spawn_retry");
  EXPECT_EQ(pool.worker_count(), 4u);
}

TEST_F(SpawnFailure, TransientFailureDuringEnsureRecovers) {
  pstlb::sched::thread_pool pool(1, "ensure_retry");
  fault::set("spawnfail:1");
  pool.ensure(4);  // must not throw: one failure, retried
  EXPECT_EQ(pool.worker_count(), 3u);
}

TEST_F(SpawnFailure, SpawnfailCountParses) {
  EXPECT_EQ(fault::parse("spawnfail:2").mode, fault::kind::spawnfail);
  EXPECT_EQ(fault::parse("spawnfail:2").spawn_fails, 2u);
  EXPECT_EQ(fault::parse("spawnfail").spawn_fails, 0u);  // 0 = every attempt
  EXPECT_EQ(fault::parse("spawnfail:0").mode, fault::kind::none);
  EXPECT_EQ(fault::parse("spawnfail:x").mode, fault::kind::none);
}

TEST_F(SpawnFailure, FailedEnsureLeavesTaskQueuePoolUsable) {
  pstlb::sched::task_queue_pool pool(1);
  fault::set("spawnfail");
  EXPECT_THROW(pool.ensure(4), std::system_error);
  fault::set(fault::spec{});
  std::atomic<int> sum{0};
  loop_context ctx;
  ctx.n = 100;
  ctx.grain = 10;
  ctx.state = &sum;
  ctx.run = [](void* state, pstlb::index_t b, pstlb::index_t e, unsigned) {
    static_cast<std::atomic<int>*>(state)->fetch_add(static_cast<int>(e - b));
  };
  pool.run(2, ctx);
  EXPECT_EQ(sum.load(), 100);
}

}  // namespace
