#include "sched/steal_pool.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <thread>
#include <vector>

namespace pstlb::sched {
namespace {

loop_context make_count_ctx(index_t n, index_t grain,
                            std::vector<std::atomic<int>>& hits) {
  loop_context ctx;
  ctx.n = n;
  ctx.grain = grain;
  ctx.state = &hits;
  ctx.run = [](void* state, index_t b, index_t e, unsigned) {
    auto& h = *static_cast<std::vector<std::atomic<int>>*>(state);
    for (index_t i = b; i < e; ++i) { h[static_cast<std::size_t>(i)].fetch_add(1); }
  };
  return ctx;
}

class SteamPoolCoverage : public ::testing::TestWithParam<std::tuple<int, int, int>> {};

TEST_P(SteamPoolCoverage, EveryIndexExactlyOnce) {
  const auto [n, grain, threads] = GetParam();
  steal_pool pool(threads - 1);
  std::vector<std::atomic<int>> hits(static_cast<std::size_t>(n));
  const loop_context ctx = make_count_ctx(n, grain, hits);
  pool.run(static_cast<unsigned>(threads), ctx);
  for (int i = 0; i < n; ++i) {
    ASSERT_EQ(hits[static_cast<std::size_t>(i)].load(), 1) << "index " << i;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Grid, SteamPoolCoverage,
    ::testing::Values(std::tuple{0, 1, 4}, std::tuple{1, 1, 4}, std::tuple{5, 2, 4},
                      std::tuple{1000, 7, 2}, std::tuple{1000, 1000, 4},
                      std::tuple{1000, 2000, 4}, std::tuple{100000, 128, 4},
                      std::tuple{100000, 1, 8}, std::tuple{9973, 64, 3}));

TEST(StealPool, ReusableAcrossLoops) {
  steal_pool pool(3);
  for (int round = 0; round < 50; ++round) {
    std::atomic<long> sum{0};
    loop_context ctx;
    ctx.n = 1000;
    ctx.grain = 16;
    ctx.state = &sum;
    ctx.run = [](void* state, index_t b, index_t e, unsigned) {
      long local = 0;
      for (index_t i = b; i < e; ++i) { local += i; }
      static_cast<std::atomic<long>*>(state)->fetch_add(local);
    };
    pool.run(4, ctx);
    EXPECT_EQ(sum.load(), 999L * 1000 / 2);
  }
}

TEST(StealPool, CancellationSkipsLaterChunks) {
  steal_pool pool(3);
  std::atomic<index_t> cancel{1 << 20};
  std::atomic<long> executed{0};

  struct state_t {
    std::atomic<index_t>* cancel;
    std::atomic<long>* executed;
  } state{&cancel, &executed};

  loop_context ctx;
  ctx.n = 1 << 20;
  ctx.grain = 256;
  ctx.cancel_before = &cancel;
  ctx.state = &state;
  ctx.run = [](void* raw, index_t b, index_t e, unsigned) {
    auto& s = *static_cast<state_t*>(raw);
    s.executed->fetch_add(e - b);
    if (b <= 1000 && 1000 < e) { fetch_min(*s.cancel, 1000); }
  };
  pool.run(4, ctx);
  // Cancellation is advisory, but most of the space past the hit must be
  // skipped (we scanned far less than everything).
  EXPECT_LT(executed.load(), (1 << 20) / 2);
  EXPECT_LE(cancel.load(), 1000);
}

TEST(StealPool, TidsAreWithinRange) {
  steal_pool pool(3);
  std::atomic<unsigned> max_tid{0};
  loop_context ctx;
  ctx.n = 10000;
  ctx.grain = 8;
  ctx.state = &max_tid;
  ctx.run = [](void* state, index_t, index_t, unsigned tid) {
    auto& mt = *static_cast<std::atomic<unsigned>*>(state);
    unsigned cur = mt.load();
    while (tid > cur && !mt.compare_exchange_weak(cur, tid)) {}
  };
  pool.run(4, ctx);
  EXPECT_LT(max_tid.load(), 4u);
}

}  // namespace
}  // namespace pstlb::sched
