#include "sched/task_queue_pool.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <vector>

namespace pstlb::sched {
namespace {

TEST(TaskQueuePool, SubmitAndWaitAll) {
  task_queue_pool pool(3);
  std::atomic<int> count{0};
  for (int i = 0; i < 100; ++i) {
    pool.submit([&] { count.fetch_add(1); });
  }
  pool.wait_all();
  EXPECT_EQ(count.load(), 100);
}

TEST(TaskQueuePool, WaitAllOnIdlePoolReturnsImmediately) {
  task_queue_pool pool(2);
  pool.wait_all();
  SUCCEED();
}

TEST(TaskQueuePool, LoopCoversEveryIndexOnce) {
  task_queue_pool pool(3);
  for (const index_t n : {index_t{0}, index_t{1}, index_t{17}, index_t{4096}}) {
    std::vector<std::atomic<int>> hits(static_cast<std::size_t>(n));
    loop_context ctx;
    ctx.n = n;
    ctx.grain = 32;
    ctx.state = &hits;
    ctx.run = [](void* state, index_t b, index_t e, unsigned) {
      auto& h = *static_cast<std::vector<std::atomic<int>>*>(state);
      for (index_t i = b; i < e; ++i) { h[static_cast<std::size_t>(i)].fetch_add(1); }
    };
    pool.run(4, ctx);
    for (index_t i = 0; i < n; ++i) {
      ASSERT_EQ(hits[static_cast<std::size_t>(i)].load(), 1) << "n=" << n << " i=" << i;
    }
  }
}

TEST(TaskQueuePool, SlotsAreUniquePerConcurrentWorker) {
  task_queue_pool pool(3);
  const unsigned slots = pool.slot_count();
  // Track concurrent occupancy per slot: never two chunks in the same slot
  // at the same time (the invariant reductions rely on).
  std::vector<std::atomic<int>> occupancy(slots);
  std::atomic<bool> collision{false};

  struct state_t {
    std::vector<std::atomic<int>>* occupancy;
    std::atomic<bool>* collision;
  } state{&occupancy, &collision};

  loop_context ctx;
  ctx.n = 20000;
  ctx.grain = 50;
  ctx.state = &state;
  ctx.run = [](void* raw, index_t, index_t, unsigned tid) {
    auto& s = *static_cast<state_t*>(raw);
    if ((*s.occupancy)[tid].fetch_add(1) != 0) { s.collision->store(true); }
    // small busy wait to widen the race window
    std::atomic<int> spin{0};
    while (spin.fetch_add(1, std::memory_order_relaxed) < 50) {}
    (*s.occupancy)[tid].fetch_sub(1);
  };
  pool.run(4, ctx);
  EXPECT_FALSE(collision.load());
}

TEST(TaskQueuePool, GrowsForMoreParticipants) {
  task_queue_pool pool(1);
  std::atomic<int> count{0};
  loop_context ctx;
  ctx.n = 1000;
  ctx.grain = 10;
  ctx.state = &count;
  ctx.run = [](void* state, index_t b, index_t e, unsigned) {
    static_cast<std::atomic<int>*>(state)->fetch_add(static_cast<int>(e - b));
  };
  pool.run(6, ctx);
  EXPECT_EQ(count.load(), 1000);
  EXPECT_GE(pool.worker_count(), 5u);
}

}  // namespace
}  // namespace pstlb::sched
