#include "sched/thread_pool.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <set>
#include <thread>
#include <vector>

namespace pstlb::sched {
namespace {

TEST(ThreadPool, SingleThreadRunsInline) {
  thread_pool pool(0);
  const auto caller = std::this_thread::get_id();
  bool ran = false;
  pool.run(1, [&](unsigned tid, unsigned nthreads) {
    EXPECT_EQ(tid, 0u);
    EXPECT_EQ(nthreads, 1u);
    EXPECT_EQ(std::this_thread::get_id(), caller);
    ran = true;
  });
  EXPECT_TRUE(ran);
}

TEST(ThreadPool, AllTidsParticipateExactlyOnce) {
  thread_pool pool(3);
  std::vector<std::atomic<int>> hits(4);
  pool.run(4, [&](unsigned tid, unsigned nthreads) {
    EXPECT_EQ(nthreads, 4u);
    ASSERT_LT(tid, 4u);
    hits[tid].fetch_add(1);
  });
  for (const auto& h : hits) { EXPECT_EQ(h.load(), 1); }
}

TEST(ThreadPool, GrowsOnDemand) {
  thread_pool pool(1);
  EXPECT_EQ(pool.worker_count(), 1u);
  std::atomic<int> count{0};
  pool.run(6, [&](unsigned, unsigned) { count.fetch_add(1); });
  EXPECT_EQ(count.load(), 6);
  EXPECT_GE(pool.worker_count(), 5u);
}

TEST(ThreadPool, ReusableAcrossManyRegions) {
  thread_pool pool(3);
  std::atomic<long> total{0};
  for (int round = 0; round < 200; ++round) {
    pool.run(4, [&](unsigned tid, unsigned) { total.fetch_add(tid); });
  }
  EXPECT_EQ(total.load(), 200 * (0 + 1 + 2 + 3));
}

TEST(ThreadPool, VariableParticipantCounts) {
  thread_pool pool(7);
  for (unsigned t : {1u, 2u, 3u, 5u, 8u, 2u, 8u, 1u}) {
    std::atomic<unsigned> count{0};
    pool.run(t, [&](unsigned, unsigned nthreads) {
      EXPECT_EQ(nthreads, t);
      count.fetch_add(1);
    });
    EXPECT_EQ(count.load(), t);
  }
}

TEST(ThreadPool, ConcurrentCallersSerialize) {
  thread_pool pool(3);
  std::atomic<long> total{0};
  std::vector<std::thread> callers;
  for (int i = 0; i < 4; ++i) {
    callers.emplace_back([&] {
      for (int round = 0; round < 50; ++round) {
        pool.run(4, [&](unsigned, unsigned) { total.fetch_add(1); });
      }
    });
  }
  for (auto& caller : callers) { caller.join(); }
  EXPECT_EQ(total.load(), 4 * 50 * 4);
}

TEST(ThreadPool, GlobalPoolIsSingleton) {
  EXPECT_EQ(&thread_pool::global(), &thread_pool::global());
}

}  // namespace
}  // namespace pstlb::sched
