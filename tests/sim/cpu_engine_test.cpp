// CPU engine invariants: physical sanity bounds that must hold for any
// calibration (speedup <= threads, bandwidth caps, monotonicity, placement
// effects, fallback flags).
#include "sim/cpu_engine.hpp"

#include <gtest/gtest.h>

#include "sim/run.hpp"

namespace pstlb::sim {
namespace {

constexpr double kN30 = 1073741824.0;  // 2^30

kernel_params params(kernel k, double n, double k_it = 1) {
  kernel_params p;
  p.kind = k;
  p.n = n;
  p.k_it = k_it;
  return p;
}

TEST(CpuEngine, SpeedupNeverExceedsThreadCount) {
  for (const machine* m : machines::cpus()) {
    for (const backend_profile* prof : profiles::parallel()) {
      for (kernel k : {kernel::for_each, kernel::reduce, kernel::sort}) {
        for (unsigned t : {2u, 8u, m->cores}) {
          const double self_speedup =
              run(*m, *prof, params(k, kN30), 1).seconds /
              run(*m, *prof, params(k, kN30), t).seconds;
          // Sort switches algorithms between t=1 (introsort) and t>1
          // (mergesort, which does asymptotically less comparison work per
          // element here), so mild superlinearity is legitimate there.
          const double slack = k == kernel::sort ? 1.20 : 1.05;
          EXPECT_LE(self_speedup, t * slack)
              << prof->name << " " << kernel_name(k) << " t=" << t;
        }
      }
    }
  }
}

TEST(CpuEngine, TimeMonotoneInProblemSize) {
  const machine& c = machines::mach_c();
  for (const backend_profile* prof : profiles::all()) {
    double prev = 0;
    for (double n = 8; n <= kN30; n *= 64) {
      const auto r = run(c, *prof, params(kernel::for_each, n), 128);
      ASSERT_GE(r.seconds, prev) << prof->name << " n=" << n;
      prev = r.seconds;
    }
  }
}

TEST(CpuEngine, BandwidthNeverExceedsStream) {
  // Memory-bound kernel at full thread count: implied DRAM bandwidth must
  // stay below the machine's measured all-core STREAM number.
  for (const machine* m : machines::cpus()) {
    for (const backend_profile* prof : profiles::parallel()) {
      const auto r = run(*m, *prof, params(kernel::reduce, kN30), m->cores);
      const double implied_gbs = r.ctrs.bytes_total() / r.seconds / 1e9;
      EXPECT_LE(implied_gbs, m->bwall_gbs * 1.01) << m->name << " " << prof->name;
    }
  }
}

TEST(CpuEngine, SequentialTouchThrottlesMemoryBoundKernels) {
  // Fig. 1 mechanism: node-0-only pages bottleneck on one node's
  // controllers; first-touch spreading restores full-machine bandwidth.
  const machine& a = machines::mach_a();
  const auto& tbb = profiles::gcc_tbb();
  const double spread =
      run(a, tbb, params(kernel::for_each, kN30), 32, numa::placement::parallel_touch)
          .seconds;
  const double node0 =
      run(a, tbb, params(kernel::for_each, kN30), 32, numa::placement::sequential_touch)
          .seconds;
  EXPECT_GT(node0, spread * 1.3);
  EXPECT_LT(node0, spread * 2.5);
}

TEST(CpuEngine, ComputeBoundKernelsDontCareAboutPlacement) {
  const machine& a = machines::mach_a();
  const auto& tbb = profiles::gcc_tbb();
  const double spread = run(a, tbb, params(kernel::for_each, 1 << 24, 1000), 32,
                            numa::placement::parallel_touch)
                            .seconds;
  const double node0 = run(a, tbb, params(kernel::for_each, 1 << 24, 1000), 32,
                           numa::placement::sequential_touch)
                           .seconds;
  EXPECT_NEAR(node0 / spread, 1.0, 0.1);
}

TEST(CpuEngine, UnsupportedKernelsAreFlagged) {
  const auto r =
      run(machines::mach_a(), profiles::gcc_gnu(), params(kernel::inclusive_scan, kN30), 32);
  EXPECT_FALSE(r.supported);
}

TEST(CpuEngine, SequentialFallbackIgnoresThreadCount) {
  // NVC-OMP inclusive_scan runs sequential code regardless of threads.
  const auto& nvc = profiles::nvc_omp();
  const machine& c = machines::mach_c();
  const double t1 = run(c, nvc, params(kernel::inclusive_scan, kN30), 1).seconds;
  const double t128 = run(c, nvc, params(kernel::inclusive_scan, kN30), 128).seconds;
  EXPECT_NEAR(t128 / t1, 1.0, 1e-9);
}

TEST(CpuEngine, SeqThresholdSwitchesImplementation) {
  // GNU runs sequentially below 2^10 elements (Section 5.2): right at the
  // boundary the parallel version kicks in.
  const auto& gnu = profiles::gcc_gnu();
  const machine& a = machines::mach_a();
  const auto below = run(a, gnu, params(kernel::for_each, 512), 32);
  const auto above = run(a, gnu, params(kernel::for_each, 1024), 32);
  // Below threshold: no fork cost, so the per-element time is tiny;
  // above: the fork overhead appears (~6 us dominates 1024 elements).
  EXPECT_LT(below.seconds, above.seconds);
  EXPECT_GT(above.seconds, gnu.fork_s);
}

TEST(CpuEngine, SmallSizesAreOverheadDominatedForAllParallelBackends) {
  // Fig. 2: sequential beats parallel below ~2^10 elements.
  const machine& a = machines::mach_a();
  const double seq = gcc_seq_seconds(a, params(kernel::for_each, 256));
  for (const backend_profile* prof : profiles::parallel()) {
    if (prof->seq_threshold_foreach > 256) { continue; }  // falls back anyway
    const double par = run(a, *prof, params(kernel::for_each, 256), 32).seconds;
    EXPECT_GT(par, seq) << prof->name;
  }
}

TEST(CpuEngine, LargeSizesFavorParallelForAllBackends) {
  // Fig. 2: by 2^30 every parallel backend beats sequential.
  for (const machine* m : machines::cpus()) {
    const double seq = gcc_seq_seconds(*m, params(kernel::for_each, kN30));
    for (const backend_profile* prof : profiles::parallel()) {
      const double par = run(*m, *prof, params(kernel::for_each, kN30), m->cores).seconds;
      EXPECT_LT(par, seq) << m->name << " " << prof->name;
    }
  }
}

TEST(CpuEngine, CountersMatchKernelAccounting) {
  const auto r = run(machines::mach_a(), profiles::gcc_tbb(),
                     params(kernel::for_each, kN30), 32);
  // Table 3: exactly one scalar FLOP per element per k_it.
  EXPECT_DOUBLE_EQ(r.ctrs.fp_scalar, kN30);
  EXPECT_DOUBLE_EQ(r.ctrs.fp_256, 0);
  // Instructions per element calibrated to 16 (1.72T / 100 calls / 2^30).
  EXPECT_NEAR(r.ctrs.instructions / kN30, 16.0, 0.5);
}

TEST(CpuEngine, VectorizedReduceReports256BitOps) {
  const auto icc = run(machines::mach_a(), profiles::icc_tbb(),
                       params(kernel::reduce, kN30), 32);
  EXPECT_GT(icc.ctrs.fp_256, 0);
  EXPECT_NEAR(icc.ctrs.fp_256, kN30 / 4, kN30 / 100);  // Table 4: 26G per call
  const auto gcc = run(machines::mach_a(), profiles::gcc_tbb(),
                       params(kernel::reduce, kN30), 32);
  EXPECT_DOUBLE_EQ(gcc.ctrs.fp_256, 0);
  EXPECT_DOUBLE_EQ(gcc.ctrs.fp_scalar, kN30);
}

TEST(CpuEngine, ThreadsClampToMachineCores) {
  const machine& a = machines::mach_a();
  const auto at_cores = run(a, profiles::gcc_tbb(), params(kernel::reduce, kN30), 32);
  const auto beyond = run(a, profiles::gcc_tbb(), params(kernel::reduce, kN30), 1024);
  EXPECT_DOUBLE_EQ(at_cores.seconds, beyond.seconds);
}

TEST(CpuEngine, DeterministicAcrossCalls) {
  const auto a = run(machines::mach_b(), profiles::gcc_hpx(),
                     params(kernel::sort, kN30), 64);
  const auto b = run(machines::mach_b(), profiles::gcc_hpx(),
                     params(kernel::sort, kN30), 64);
  EXPECT_DOUBLE_EQ(a.seconds, b.seconds);
}

TEST(CpuEngine, ScatterBeatsCompactAtLowThreadCounts) {
  // 8 threads on Mach B: scatter touches 8 memory controllers, compact one.
  const machine& b = machines::mach_b();
  const auto& tbb = profiles::gcc_tbb();
  const double scatter = run(b, tbb, params(kernel::reduce, kN30), 8,
                             numa::placement::parallel_touch,
                             thread_placement::scatter)
                             .seconds;
  const double compact = run(b, tbb, params(kernel::reduce, kN30), 8,
                             numa::placement::parallel_touch,
                             thread_placement::compact)
                             .seconds;
  EXPECT_LT(scatter, compact);
  // At full machine the placements converge.
  const double scatter_full = run(b, tbb, params(kernel::reduce, kN30), 64,
                                  numa::placement::parallel_touch,
                                  thread_placement::scatter)
                                  .seconds;
  const double compact_full = run(b, tbb, params(kernel::reduce, kN30), 64,
                                  numa::placement::parallel_touch,
                                  thread_placement::compact)
                                  .seconds;
  EXPECT_NEAR(scatter_full / compact_full, 1.0, 0.05);
}

TEST(RunHelpers, SweepsAreWellFormed) {
  const auto sizes = problem_sizes(3, 30);
  EXPECT_EQ(sizes.size(), 28u);
  EXPECT_DOUBLE_EQ(sizes.front(), 8);
  EXPECT_DOUBLE_EQ(sizes.back(), kN30);
  const auto threads = thread_sweep(128);
  EXPECT_EQ(threads.front(), 1u);
  EXPECT_EQ(threads.back(), 128u);
  const auto uneven = thread_sweep(48);
  EXPECT_EQ(uneven.back(), 48u);
}

TEST(RunHelpers, EfficiencyTableProducesPowerOfTwoish) {
  const unsigned t = max_threads_at_efficiency(
      machines::mach_a(), profiles::gcc_tbb(), params(kernel::for_each, kN30, 1000), 0.7);
  EXPECT_GE(t, 16u);  // Table 6: k=1000 keeps all 32 cores >= 70 % efficient
}

}  // namespace
}  // namespace pstlb::sim
