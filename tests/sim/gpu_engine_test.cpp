// GPU model invariants and the Fig. 8/9 mechanisms.
#include "sim/gpu_engine.hpp"

#include <gtest/gtest.h>

#include "sim/run.hpp"

namespace pstlb::sim {
namespace {

gpu_config config(const gpu& dev, kernel k, double n, double k_it, bool resident,
                  bool transfer_back) {
  gpu_config c;
  c.device = &dev;
  c.params.kind = k;
  c.params.n = n;
  c.params.elem_bytes = 4;  // float, as in Section 5.8
  c.params.k_it = k_it;
  c.data_on_device = resident;
  c.transfer_back = transfer_back;
  return c;
}

TEST(GpuEngine, LaunchLatencyFloorsTinyKernels) {
  const gpu& d = machines::mach_d();
  const auto r = simulate_gpu(config(d, kernel::for_each, 8, 1, true, false));
  EXPECT_GE(r.seconds, d.launch_latency_s);
  EXPECT_LT(r.seconds, d.launch_latency_s * 2);
}

TEST(GpuEngine, TransfersDominateLowIntensity) {
  const gpu& d = machines::mach_d();
  const auto r =
      simulate_gpu(config(d, kernel::for_each, 1 << 26, 1, false, true));
  EXPECT_GT(r.h2d_seconds + r.d2h_seconds, 5 * r.kernel_seconds);
}

TEST(GpuEngine, ResidencyRemovesH2d) {
  const gpu& d = machines::mach_d();
  const auto cold = simulate_gpu(config(d, kernel::reduce, 1 << 26, 1, false, false));
  const auto warm = simulate_gpu(config(d, kernel::reduce, 1 << 26, 1, true, false));
  EXPECT_GT(cold.h2d_seconds, 0);
  EXPECT_DOUBLE_EQ(warm.h2d_seconds, 0);
  EXPECT_LT(warm.seconds, cold.seconds);
}

TEST(GpuEngine, CrossoverMonotoneInIntensity) {
  // Fig. 8: raising k_it amortizes the transfers; the ratio
  // transfer/(total) must fall monotonically.
  const gpu& d = machines::mach_d();
  double prev_ratio = 1.0;
  for (double k : {1.0, 10.0, 100.0, 1000.0, 10000.0}) {
    const auto r = simulate_gpu(config(d, kernel::for_each, 1 << 26, k, false, true));
    const double ratio = (r.h2d_seconds + r.d2h_seconds) / r.seconds;
    EXPECT_LE(ratio, prev_ratio + 1e-12) << "k=" << k;
    prev_ratio = ratio;
  }
}

TEST(GpuEngine, HighIntensityGpuBeatsParallelCpu) {
  // Fig. 8's headline: at k_it = 10000 the T4 outperforms the 32-core CPU
  // by an order of magnitude (paper: 23.5x).
  const gpu& d = machines::mach_d();
  kernel_params p;
  p.kind = kernel::for_each;
  p.n = 1 << 26;
  p.elem_bytes = 4;
  p.k_it = 10000;
  const double cpu =
      run(machines::mach_a(), profiles::gcc_tbb(), p, 32).seconds;
  const auto gpu_r = simulate_gpu(config(d, kernel::for_each, 1 << 26, 10000, false, true));
  EXPECT_GT(cpu / gpu_r.seconds, 5.0);
  EXPECT_LT(cpu / gpu_r.seconds, 80.0);
}

TEST(GpuEngine, LowIntensityGpuLosesToSequentialCpu) {
  // Fig. 9a: with a D2H transfer per call, the GPU is slower than even the
  // sequential CPU for reduce.
  const gpu& d = machines::mach_d();
  kernel_params p;
  p.kind = kernel::reduce;
  p.n = 1 << 24;
  p.elem_bytes = 4;
  const double seq_cpu = gcc_seq_seconds(machines::mach_a(), p);
  const auto gpu_r = simulate_gpu(config(d, kernel::reduce, 1 << 24, 1, false, true));
  EXPECT_GT(gpu_r.seconds, seq_cpu);
}

TEST(GpuEngine, ChainedReduceBeatsCpu) {
  // Fig. 9b: resident data flips the comparison.
  const gpu& d = machines::mach_d();
  kernel_params p;
  p.kind = kernel::reduce;
  p.n = 1 << 26;
  p.elem_bytes = 4;
  const double par_cpu = run(machines::mach_a(), profiles::gcc_tbb(), p, 32).seconds;
  const auto gpu_r = simulate_gpu(config(d, kernel::reduce, 1 << 26, 1, true, false));
  EXPECT_LT(gpu_r.seconds, par_cpu);
}

TEST(GpuEngine, TeslaOutrunsAmpereA2) {
  // Mach D (T4) has more cores and bandwidth than Mach E (A2).
  const auto d = simulate_gpu(
      config(machines::mach_d(), kernel::for_each, 1 << 26, 1000, true, false));
  const auto e = simulate_gpu(
      config(machines::mach_e(), kernel::for_each, 1 << 26, 1000, true, false));
  EXPECT_LT(d.seconds, e.seconds);
}

}  // namespace
}  // namespace pstlb::sim
