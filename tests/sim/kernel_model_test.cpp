#include "sim/kernel_model.hpp"

#include <gtest/gtest.h>

namespace pstlb::sim {
namespace {

kernel_params params(kernel k, double n, double k_it = 1) {
  kernel_params p;
  p.kind = k;
  p.n = n;
  p.k_it = k_it;
  return p;
}

TEST(KernelModel, NamesRoundTrip) {
  for (kernel k : {kernel::find, kernel::for_each, kernel::reduce,
                   kernel::inclusive_scan, kernel::sort, kernel::copy,
                   kernel::transform, kernel::count, kernel::min_element,
                   kernel::exclusive_scan}) {
    EXPECT_EQ(parse_kernel(kernel_name(k)), k);
  }
}

TEST(KernelModel, ForEachTrafficMatchesWriteAllocateAccounting) {
  // 2^30 doubles: load + RFO + write-back = 24 GiB per call, the magnitude
  // Likwid reports in Table 3 (17.6-21.3 GiB after backend-specific NT
  // stores, i.e. 0.73-0.89 of the model).
  const auto phases = phases_for(params(kernel::for_each, 1073741824.0),
                                 algo_shape{true, 32, 0});
  ASSERT_EQ(phases.size(), 1u);
  EXPECT_DOUBLE_EQ(total_bytes(phases), 1073741824.0 * 24);
}

TEST(KernelModel, ForEachComputeScalesWithKit) {
  const auto low = phases_for(params(kernel::for_each, 1000, 1), algo_shape{true, 4, 0});
  const auto high =
      phases_for(params(kernel::for_each, 1000, 1000), algo_shape{true, 4, 0});
  EXPECT_DOUBLE_EQ(high[0].flops_per_elem, 1000 * low[0].flops_per_elem);
}

TEST(KernelModel, FindScansHalfInExpectation) {
  const auto phases = phases_for(params(kernel::find, 1 << 20), algo_shape{true, 8, 0});
  ASSERT_EQ(phases.size(), 1u);
  EXPECT_DOUBLE_EQ(phases[0].executed_fraction, 0.5);
  EXPECT_DOUBLE_EQ(total_bytes(phases), (1 << 20) * 8 * 0.5);
}

TEST(KernelModel, ParallelScanHasThreePhases) {
  const auto par =
      phases_for(params(kernel::inclusive_scan, 1 << 20), algo_shape{true, 16, 0});
  ASSERT_EQ(par.size(), 3u);
  EXPECT_TRUE(par[0].parallel);
  EXPECT_FALSE(par[1].parallel);  // prefix of chunk sums is serial
  EXPECT_TRUE(par[2].parallel);
  // Parallel scan moves more data than the serial one — the reason its
  // speedup ceiling is BW_ratio * 24/32 (Section 5.4).
  const auto seq =
      phases_for(params(kernel::inclusive_scan, 1 << 20), algo_shape{false, 1, 0});
  ASSERT_EQ(seq.size(), 1u);
  EXPECT_GT(total_bytes(par), total_bytes(seq));
}

TEST(KernelModel, SortMergeRoundsFollowBackendShape) {
  const auto binary = phases_for(params(kernel::sort, 1 << 24), algo_shape{true, 32, 0});
  const auto multiway =
      phases_for(params(kernel::sort, 1 << 24), algo_shape{true, 32, 1});
  ASSERT_EQ(binary.size(), 2u);
  ASSERT_EQ(multiway.size(), 2u);
  // Binary pairwise merging re-streams the array log2(64) = 6 times; the
  // GNU multiway merge does it once — Section 5.6's explanation.
  EXPECT_GT(binary[1].elems, 5 * multiway[1].elems);
}

TEST(KernelModel, SequentialSortIsSinglePhase) {
  const auto phases = phases_for(params(kernel::sort, 1 << 20), algo_shape{false, 1, 0});
  ASSERT_EQ(phases.size(), 1u);
  EXPECT_FALSE(phases[0].parallel);
  EXPECT_GT(phases[0].flops_per_elem, 10);  // ~4 log2(n)
}

TEST(KernelModel, ReduceIsReadOnly) {
  const auto phases = phases_for(params(kernel::reduce, 1000), algo_shape{true, 4, 0});
  ASSERT_EQ(phases.size(), 1u);
  EXPECT_DOUBLE_EQ(phases[0].writes_per_elem, 0);
  EXPECT_TRUE(phases[0].vectorizable);
}

TEST(KernelModel, ElemBytesPropagate) {
  kernel_params p = params(kernel::reduce, 1000);
  p.elem_bytes = 4;  // float, the GPU experiments
  const auto phases = phases_for(p, algo_shape{true, 4, 0});
  EXPECT_DOUBLE_EQ(phases[0].reads_per_elem, 4);
}

}  // namespace
}  // namespace pstlb::sim
