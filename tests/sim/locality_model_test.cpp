// The explicit steal-locality model (DESIGN.md §14): uniform random victims
// pay the cross-node interconnect on most dynamically scheduled chunks;
// locality-first stealing plus node-affine placement recovers it. The legacy
// mode must stay bit-identical to run() so the calibrated tables don't move.
#include <gtest/gtest.h>

#include "sim/run.hpp"

namespace pstlb::sim {
namespace {

kernel_params params_of(kernel k) {
  kernel_params p;
  p.kind = k;
  p.n = 1 << 28;
  return p;
}

TEST(LocalityModel, LegacyDefaultMatchesPlainRun) {
  for (kernel k : {kernel::sort, kernel::inclusive_scan, kernel::for_each}) {
    const auto base = run(machines::mach_c(), profiles::gcc_tbb(), params_of(k), 128);
    const auto legacy =
        run_with_locality(machines::mach_c(), profiles::gcc_tbb(), params_of(k),
                          128, steal_locality::legacy);
    EXPECT_DOUBLE_EQ(base.seconds, legacy.seconds);
  }
}

TEST(LocalityModel, LocalityFirstBeatsUniformOnEightNodes) {
  // Mach C: 8 NUMA nodes, 128 cores. The ISSUE acceptance bar: sort and
  // scan measurably (>= 5%) faster with locality-first stealing.
  for (kernel k : {kernel::sort, kernel::inclusive_scan}) {
    const double uniform =
        run_with_locality(machines::mach_c(), profiles::gcc_tbb(), params_of(k),
                          128, steal_locality::uniform)
            .seconds;
    const double local =
        run_with_locality(machines::mach_c(), profiles::gcc_tbb(), params_of(k),
                          128, steal_locality::locality_first)
            .seconds;
    ASSERT_GT(uniform, 0.0);
    ASSERT_GT(local, 0.0);
    EXPECT_LT(local, uniform * 0.95)
        << "kernel " << static_cast<int>(k) << ": locality_first " << local
        << "s vs uniform " << uniform << "s";
  }
}

TEST(LocalityModel, NodeAffinePlacementHelpsFurther) {
  const auto p = params_of(kernel::sort);
  const double parallel =
      run_with_locality(machines::mach_c(), profiles::gcc_tbb(), p, 128,
                        steal_locality::locality_first,
                        numa::placement::parallel_touch)
          .seconds;
  const double affine =
      run_with_locality(machines::mach_c(), profiles::gcc_tbb(), p, 128,
                        steal_locality::locality_first,
                        numa::placement::node_affine_touch)
          .seconds;
  EXPECT_LT(affine, parallel);
}

TEST(LocalityModel, SingleNodeMachineIsExactNoOp) {
  // Mach F has one NUMA node: all three modes must coincide exactly.
  for (kernel k : {kernel::sort, kernel::inclusive_scan, kernel::for_each}) {
    const auto p = params_of(k);
    const double legacy =
        run_with_locality(machines::mach_f(), profiles::gcc_tbb(), p, 64,
                          steal_locality::legacy)
            .seconds;
    const double uniform =
        run_with_locality(machines::mach_f(), profiles::gcc_tbb(), p, 64,
                          steal_locality::uniform)
            .seconds;
    const double local =
        run_with_locality(machines::mach_f(), profiles::gcc_tbb(), p, 64,
                          steal_locality::locality_first)
            .seconds;
    EXPECT_DOUBLE_EQ(legacy, uniform);
    EXPECT_DOUBLE_EQ(legacy, local);
  }
}

TEST(LocalityModel, UniformNeverBeatsLegacyOnMultiNode) {
  // The explicit uniform model only *adds* remote-traffic cost on top of the
  // calibrated path; it must not make anything faster.
  for (kernel k : {kernel::sort, kernel::inclusive_scan}) {
    const auto p = params_of(k);
    const double legacy =
        run_with_locality(machines::mach_c(), profiles::gcc_tbb(), p, 128,
                          steal_locality::legacy)
            .seconds;
    const double uniform =
        run_with_locality(machines::mach_c(), profiles::gcc_tbb(), p, 128,
                          steal_locality::uniform)
            .seconds;
    EXPECT_GE(uniform, legacy);
  }
}

}  // namespace
}  // namespace pstlb::sim
