#include "sim/machine.hpp"

#include <gtest/gtest.h>

namespace pstlb::sim {
namespace {

TEST(Machines, TableTwoValues) {
  const machine& a = machines::mach_a();
  EXPECT_EQ(a.cores, 32u);
  EXPECT_EQ(a.numa_nodes, 2u);
  EXPECT_DOUBLE_EQ(a.bw1_gbs, 11.7);
  EXPECT_DOUBLE_EQ(a.bwall_gbs, 135.0);
  EXPECT_DOUBLE_EQ(a.freq_ghz, 2.10);

  const machine& b = machines::mach_b();
  EXPECT_EQ(b.cores, 64u);
  EXPECT_EQ(b.numa_nodes, 8u);
  EXPECT_DOUBLE_EQ(b.bwall_gbs, 204.0);

  const machine& c = machines::mach_c();
  EXPECT_EQ(c.cores, 128u);
  EXPECT_DOUBLE_EQ(c.bw1_gbs, 42.6);
  EXPECT_DOUBLE_EQ(c.bwall_gbs, 249.0);
}

TEST(Machines, DerivedQuantities) {
  const machine& b = machines::mach_b();
  EXPECT_EQ(b.cores_per_node(), 8u);
  EXPECT_DOUBLE_EQ(b.node_bw_gbs(), 204.0 / 8);
  EXPECT_DOUBLE_EQ(b.l2_aggregate_bytes(4), 4 * 512.0 * 1024);
}

TEST(Machines, LlcOrderingMatchesPaperDiscussion) {
  // Section 5.4: 2^26 doubles (512 MiB) exceed Mach C's LLC;
  // the LLC capacities must be ordered A < B < C.
  EXPECT_LT(machines::mach_a().llc_total_bytes, machines::mach_b().llc_total_bytes);
  EXPECT_LT(machines::mach_b().llc_total_bytes, machines::mach_c().llc_total_bytes);
  EXPECT_LE(machines::mach_c().llc_total_bytes, 512.0 * 1024 * 1024);
}

TEST(Machines, GpuTableValues) {
  const gpu& d = machines::mach_d();
  EXPECT_EQ(d.cuda_cores, 2560u);
  EXPECT_DOUBLE_EQ(d.device_bw_gbs, 264.0);
  const gpu& e = machines::mach_e();
  EXPECT_EQ(e.cuda_cores, 1280u);
  EXPECT_DOUBLE_EQ(e.device_bw_gbs, 172.0);
}

TEST(Machines, RegistryLookup) {
  EXPECT_EQ(machines::cpus().size(), 3u);
  EXPECT_EQ(&machines::by_name("Mach B"), &machines::mach_b());
}

}  // namespace
}  // namespace pstlb::sim
