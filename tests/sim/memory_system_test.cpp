#include "sim/memory_system.hpp"

#include <gtest/gtest.h>

#include "sim/machine.hpp"

namespace pstlb::sim {
namespace {

TEST(MemorySystem, TierSelectionByWorkingSet) {
  const machine& a = machines::mach_a();
  memory_system mem(a, 0.0, 1, true);
  // 32 threads x 1 MiB L2 = 32 MiB private capacity.
  EXPECT_EQ(mem.tier_for(16.0 * 1024 * 1024, 32), memory_tier::l2);
  EXPECT_EQ(mem.tier_for(40.0 * 1024 * 1024, 32), memory_tier::llc);  // < 44 MiB
  EXPECT_EQ(mem.tier_for(8.0 * 1024 * 1024 * 1024, 32), memory_tier::dram);
}

TEST(MemorySystem, SingleStreamIsLinkLimited) {
  const machine& a = machines::mach_a();
  memory_system mem(a, 0.0, 1, true);
  EXPECT_DOUBLE_EQ(mem.stream_rate_gbs(memory_tier::dram, 1), a.bw1_gbs);
}

TEST(MemorySystem, ManyStreamsShareTheNode) {
  const machine& a = machines::mach_a();
  memory_system mem(a, 0.0, 1, true);
  const double share16 = mem.stream_rate_gbs(memory_tier::dram, 16);
  EXPECT_DOUBLE_EQ(share16, a.node_bw_gbs() / 16);
  // Aggregate of one full node's streams equals the node bandwidth.
  EXPECT_NEAR(share16 * 16, a.node_bw_gbs(), 1e-9);
}

TEST(MemorySystem, GammaPenaltyScalesDramOnly) {
  const machine& a = machines::mach_a();
  memory_system clean(a, 0.0, 2, true);
  memory_system penalized(a, 1.0, 2, true);  // 1 + 1*(2-1) = 2x
  EXPECT_DOUBLE_EQ(penalized.stream_rate_gbs(memory_tier::dram, 1),
                   clean.stream_rate_gbs(memory_tier::dram, 1) / 2);
  EXPECT_DOUBLE_EQ(penalized.stream_rate_gbs(memory_tier::l2, 1),
                   clean.stream_rate_gbs(memory_tier::l2, 1));
}

TEST(MemorySystem, CacheTiersAreFasterThanDram) {
  const machine& c = machines::mach_c();
  memory_system mem(c, 0.0, 1, true);
  EXPECT_GT(mem.stream_rate_gbs(memory_tier::l2, 1),
            mem.stream_rate_gbs(memory_tier::llc, 1));
  EXPECT_GT(mem.stream_rate_gbs(memory_tier::llc, 1),
            mem.stream_rate_gbs(memory_tier::dram, 1));
}

TEST(MemorySystem, ThreadPlacementModels) {
  const machine& b = machines::mach_b();  // 8 cores per node
  memory_system scatter(b, 0.0, 8, true, thread_placement::scatter);
  memory_system compact(b, 0.0, 1, true, thread_placement::compact);
  EXPECT_EQ(scatter.node_of_core(0), 0u);
  EXPECT_EQ(scatter.node_of_core(1), 1u);   // round-robin
  EXPECT_EQ(compact.node_of_core(1), 0u);   // fills node 0 first
  EXPECT_EQ(compact.node_of_core(7), 0u);
  EXPECT_EQ(compact.node_of_core(8), 1u);
}

TEST(MemorySystem, HomeNodePlacementModels) {
  const machine& b = machines::mach_b();
  memory_system spread(b, 0.0, 8, true);
  memory_system node0(b, 0.0, 8, false);
  EXPECT_EQ(node0.home_node(5), 0u);
  EXPECT_EQ(spread.home_node(5), 5u % 8);
  EXPECT_EQ(spread.node_of_core(13), 13u % 8);
}

}  // namespace
}  // namespace pstlb::sim
