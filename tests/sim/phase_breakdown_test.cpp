// Per-phase breakdown invariants (engine_result::phases).
#include <gtest/gtest.h>

#include <numeric>

#include "sim/run.hpp"

namespace pstlb::sim {
namespace {

constexpr double kN30 = 1073741824.0;

kernel_params params(kernel k, double n) {
  kernel_params p;
  p.kind = k;
  p.n = n;
  return p;
}

TEST(PhaseBreakdown, PhaseSecondsSumToTotal) {
  for (const backend_profile* prof : profiles::all()) {
    for (kernel k : {kernel::for_each, kernel::reduce, kernel::sort,
                     kernel::inclusive_scan}) {
      const auto r = run(machines::mach_a(), *prof, params(k, kN30), 32);
      if (!r.supported) { continue; }
      double sum = 0;
      for (const auto& phase : r.phases) { sum += phase.seconds; }
      EXPECT_NEAR(sum, r.seconds, r.seconds * 1e-9) << prof->name << " "
                                                    << kernel_name(k);
    }
  }
}

TEST(PhaseBreakdown, SortHasLocalAndMergePhases) {
  const auto r = run(machines::mach_c(), profiles::gcc_tbb(), params(kernel::sort, kN30),
                     128);
  ASSERT_EQ(r.phases.size(), 2u);
  EXPECT_EQ(r.phases[0].label, "sort/local-runs");
  EXPECT_EQ(r.phases[1].label, "sort/merge-rounds");
  EXPECT_TRUE(r.phases[0].parallel);
  EXPECT_GT(r.phases[0].chunks, 0u);
}

TEST(PhaseBreakdown, GnuMergeTrafficIsOneRound) {
  // The mechanism behind GNU's sort dominance: one multiway merge round vs
  // log2(2t) binary rounds — visible directly in the per-phase bytes.
  const auto gnu = run(machines::mach_c(), profiles::gcc_gnu(), params(kernel::sort, kN30),
                       128);
  const auto tbb = run(machines::mach_c(), profiles::gcc_tbb(), params(kernel::sort, kN30),
                       128);
  ASSERT_EQ(gnu.phases.size(), 2u);
  ASSERT_EQ(tbb.phases.size(), 2u);
  EXPECT_GT(tbb.phases[1].bytes, 5.0 * gnu.phases[1].bytes);
}

TEST(PhaseBreakdown, ScanHasSerialMiddlePhase) {
  const auto r = run(machines::mach_c(), profiles::gcc_tbb(),
                     params(kernel::inclusive_scan, kN30), 128);
  ASSERT_EQ(r.phases.size(), 3u);
  EXPECT_TRUE(r.phases[0].parallel);
  EXPECT_FALSE(r.phases[1].parallel);
  EXPECT_TRUE(r.phases[2].parallel);
  // The serial prefix-of-sums is negligible next to the sweeps.
  EXPECT_LT(r.phases[1].seconds, 0.01 * r.seconds);
}

TEST(PhaseBreakdown, SmallInputsRunInCacheTier) {
  // 2^12 doubles = 32 KiB: fits the active cores' private L2.
  const auto r = run(machines::mach_a(), profiles::nvc_omp(),
                     params(kernel::reduce, 1 << 12), 32);
  ASSERT_FALSE(r.phases.empty());
  EXPECT_EQ(r.phases[0].tier, memory_tier::l2);
  const auto big = run(machines::mach_a(), profiles::nvc_omp(),
                       params(kernel::reduce, kN30), 32);
  EXPECT_EQ(big.phases[0].tier, memory_tier::dram);
}

TEST(PhaseBreakdown, SequentialRunsReportNoChunks) {
  const auto r = run(machines::mach_a(), profiles::gcc_seq(), params(kernel::for_each, kN30),
                     1);
  ASSERT_EQ(r.phases.size(), 1u);
  EXPECT_FALSE(r.phases[0].parallel);
  EXPECT_EQ(r.phases[0].chunks, 0u);
}

}  // namespace
}  // namespace pstlb::sim
