// Paper-shape assertions: the qualitative findings of Section 5 must hold in
// the simulation — who wins, rough factors, crossovers, orderings. These are
// the acceptance tests of the reproduction (see EXPERIMENTS.md).
#include <gtest/gtest.h>

#include "sim/run.hpp"

namespace pstlb::sim {
namespace {

constexpr double kN30 = 1073741824.0;

kernel_params params(kernel k, double n, double k_it = 1) {
  kernel_params p;
  p.kind = k;
  p.n = n;
  p.k_it = k_it;
  return p;
}

double speedup(const machine& m, const backend_profile& p, kernel_params kp) {
  return speedup_vs_gcc_seq(m, p, kp, m.cores, paper_alloc_for(p));
}

// --- Table 5 / Fig. 2-3: for_each ------------------------------------------

TEST(Shape_ForEach, NvcOmpIsFastestAtLowIntensity) {
  // Section 5.2: "the NVIDIA compiler with the OpenMP backend is the
  // fastest in almost every scenario".
  for (const machine* m : machines::cpus()) {
    const double nvc = speedup(*m, profiles::nvc_omp(), params(kernel::for_each, kN30));
    for (const backend_profile* other :
         {&profiles::gcc_tbb(), &profiles::gcc_gnu(), &profiles::gcc_hpx(),
          &profiles::icc_tbb()}) {
      EXPECT_GT(nvc, speedup(*m, *other, params(kernel::for_each, kN30)))
          << m->name << " vs " << other->name;
    }
  }
}

TEST(Shape_ForEach, HpxIsSlowestAtLowIntensity) {
  for (const machine* m : machines::cpus()) {
    const double hpx = speedup(*m, profiles::gcc_hpx(), params(kernel::for_each, kN30));
    for (const backend_profile* other :
         {&profiles::gcc_tbb(), &profiles::gcc_gnu(), &profiles::icc_tbb(),
          &profiles::nvc_omp()}) {
      EXPECT_LT(hpx, speedup(*m, *other, params(kernel::for_each, kN30)))
          << m->name << " vs " << other->name;
    }
  }
}

TEST(Shape_ForEach, TbbConsistentAcrossCompilers) {
  // Section 5.2: TBB performance is consistent regardless of GCC vs ICC.
  for (const machine* m : {&machines::mach_a(), &machines::mach_c()}) {
    const double gcc = speedup(*m, profiles::gcc_tbb(), params(kernel::for_each, kN30));
    const double icc = speedup(*m, profiles::icc_tbb(), params(kernel::for_each, kN30));
    EXPECT_NEAR(gcc / icc, 1.0, 0.1) << m->name;
  }
}

TEST(Shape_ForEach, HighIntensityIsNearIdealExceptHpx) {
  // Table 5 k_it = 1000: >= 80 % parallel efficiency for all but HPX (66 %).
  for (const machine* m : machines::cpus()) {
    for (const backend_profile* prof : profiles::parallel()) {
      const double s = speedup(*m, *prof, params(kernel::for_each, kN30, 1000));
      const double eff = s / m->cores;
      if (prof == &profiles::gcc_hpx()) {
        // Paper: HPX matches the others on Mach A (32.4 vs 32.5) but trails
        // visibly on the 8-node machines (66-68 % vs 80-86 %).
        EXPECT_GT(eff, 0.50) << m->name;
        if (m->numa_nodes > 2) {
          EXPECT_LT(eff, 0.78) << m->name;
        }
      } else {
        EXPECT_GT(eff, 0.78) << m->name << " " << prof->name;
      }
    }
  }
}

TEST(Shape_ForEach, SequentialWinsBelow2To10) {
  // Fig. 2: crossover between 2^10 and ~2^16 on every machine.
  for (const machine* m : machines::cpus()) {
    for (const backend_profile* prof : profiles::parallel()) {
      // Backends with a sequential-fallback threshold tie the baseline at
      // small sizes (speedup exactly 1); everyone else must lose outright.
      const double s_small = speedup(*m, *prof, params(kernel::for_each, 512));
      EXPECT_LE(s_small, 1.0 + 1e-9) << m->name << " " << prof->name;
      const double s_large = speedup(*m, *prof, params(kernel::for_each, 1 << 22));
      EXPECT_GT(s_large, 1.0) << m->name << " " << prof->name;
    }
  }
}

// --- Table 5 / Fig. 4: find --------------------------------------------------

TEST(Shape_Find, SpeedupsAreModestAndMemoryBound) {
  // Section 5.3: best observed speedup ~6-9; STREAM ratio caps scaling.
  for (const machine* m : machines::cpus()) {
    for (const backend_profile* prof : profiles::parallel()) {
      const double s = speedup(*m, *prof, params(kernel::find, kN30));
      EXPECT_LT(s, 11.0) << m->name << " " << prof->name;
      EXPECT_GT(s, 0.8) << m->name << " " << prof->name;
    }
  }
}

TEST(Shape_Find, TbbLeadsNvcAndHpxTrail) {
  // Table 5 find column: TBB ~9 on Mach A; NVC/HPX collapse to ~1.2-1.4 on
  // the Zen machines.
  const double tbb_a = speedup(machines::mach_a(), profiles::gcc_tbb(),
                               params(kernel::find, kN30));
  EXPECT_GT(tbb_a, 5.5);
  for (const machine* m : {&machines::mach_b(), &machines::mach_c()}) {
    EXPECT_LT(speedup(*m, profiles::nvc_omp(), params(kernel::find, kN30)), 2.5)
        << m->name;
    EXPECT_LT(speedup(*m, profiles::gcc_hpx(), params(kernel::find, kN30)), 2.5)
        << m->name;
  }
}

// --- Table 5 / Fig. 5: inclusive_scan ---------------------------------------

TEST(Shape_Scan, GnuHasNoParallelScan) {
  EXPECT_EQ(speedup(machines::mach_c(), profiles::gcc_gnu(),
                    params(kernel::inclusive_scan, kN30)),
            0.0);
}

TEST(Shape_Scan, NvcFallsBackToSequential) {
  // Table 5: NVC-OMP scan speedup ~0.9 (slightly slower than GCC seq).
  for (const machine* m : machines::cpus()) {
    const double s = speedup(*m, profiles::nvc_omp(), params(kernel::inclusive_scan, kN30));
    EXPECT_NEAR(s, 0.9, 0.15) << m->name;
  }
}

TEST(Shape_Scan, TbbScalesButModestly) {
  // Section 5.4: TBB implementations reach ~5 on Mach C, HPX ~1.
  const double tbb = speedup(machines::mach_c(), profiles::gcc_tbb(),
                             params(kernel::inclusive_scan, kN30));
  EXPECT_GT(tbb, 2.5);
  EXPECT_LT(tbb, 7.0);
  const double hpx = speedup(machines::mach_c(), profiles::gcc_hpx(),
                             params(kernel::inclusive_scan, kN30));
  EXPECT_LT(hpx, 1.6);
}

// --- Table 5 / Fig. 6: reduce -------------------------------------------------

TEST(Shape_Reduce, SpeedupsNearTenOnMachA) {
  // Table 5 reduce column, Mach A: 10-11 for TBB/GNU/NVC, ~7 for HPX.
  for (const backend_profile* prof :
       {&profiles::gcc_tbb(), &profiles::gcc_gnu(), &profiles::nvc_omp(),
        &profiles::icc_tbb()}) {
    const double s = speedup(machines::mach_a(), *prof, params(kernel::reduce, kN30));
    EXPECT_GT(s, 8.0) << prof->name;
    EXPECT_LT(s, 16.0) << prof->name;
  }
  const double hpx =
      speedup(machines::mach_a(), profiles::gcc_hpx(), params(kernel::reduce, kN30));
  EXPECT_LT(hpx, 8.5);
  EXPECT_GT(hpx, 4.0);
}

TEST(Shape_Reduce, HpxCollapsesOnZenMachines) {
  // Table 5: HPX reduce 0.9 | 1.2 on Mach B/C.
  EXPECT_LT(speedup(machines::mach_b(), profiles::gcc_hpx(), params(kernel::reduce, kN30)),
            1.8);
  EXPECT_LT(speedup(machines::mach_c(), profiles::gcc_hpx(), params(kernel::reduce, kN30)),
            2.0);
}

// --- Table 5 / Fig. 7: sort -----------------------------------------------------

TEST(Shape_Sort, GnuMultiwayMergesortDominates) {
  // Section 5.6 / Table 5: GCC-GNU is by far the best sort backend, and its
  // lead grows with core count (66.6 on Mach C vs ~10 for the rest).
  for (const machine* m : machines::cpus()) {
    const double gnu = speedup(*m, profiles::gcc_gnu(), params(kernel::sort, kN30));
    for (const backend_profile* other :
         {&profiles::gcc_tbb(), &profiles::gcc_hpx(), &profiles::icc_tbb(),
          &profiles::nvc_omp()}) {
      EXPECT_GT(gnu, 1.5 * speedup(*m, *other, params(kernel::sort, kN30)))
          << m->name << " vs " << other->name;
    }
  }
  const double gnu_c =
      speedup(machines::mach_c(), profiles::gcc_gnu(), params(kernel::sort, kN30));
  const double gnu_a =
      speedup(machines::mach_a(), profiles::gcc_gnu(), params(kernel::sort, kN30));
  EXPECT_GT(gnu_c, 2.0 * gnu_a);  // the lead grows with cores
}

TEST(Shape_Sort, OthersSitNearTen) {
  for (const backend_profile* prof :
       {&profiles::gcc_tbb(), &profiles::icc_tbb(), &profiles::gcc_hpx()}) {
    const double s = speedup(machines::mach_c(), *prof, params(kernel::sort, kN30));
    EXPECT_GT(s, 5.0) << prof->name;
    EXPECT_LT(s, 16.0) << prof->name;
  }
}

// --- Table 6: efficiency ---------------------------------------------------------

TEST(Shape_Efficiency, BackendsRarelySustain70PercentPastOneNode) {
  // Table 6's summary: for memory-bound kernels, no backend keeps 70 %
  // efficiency at full core count; high-intensity for_each does.
  for (const machine* m : machines::cpus()) {
    for (const backend_profile* prof : profiles::parallel()) {
      const unsigned t_mem =
          max_threads_at_efficiency(*m, *prof, params(kernel::reduce, kN30), 0.7);
      EXPECT_LT(t_mem, m->cores) << m->name << " " << prof->name;
    }
  }
  // k=1000: every non-HPX backend sustains full cores (Table 6 row 3).
  for (const machine* m : machines::cpus()) {
    EXPECT_EQ(max_threads_at_efficiency(*m, profiles::gcc_tbb(),
                                        params(kernel::for_each, kN30, 1000), 0.7),
              m->cores)
        << m->name;
  }
}

// --- Fig. 1: allocator ---------------------------------------------------------

TEST(Shape_Allocator, CustomAllocatorHelpsForEachAndReduce) {
  // Fig. 1: +63 % for_each (k=1), +50 % reduce on Mach A with 32 threads.
  const machine& a = machines::mach_a();
  for (const backend_profile* prof : {&profiles::gcc_tbb(), &profiles::nvc_omp()}) {
    for (kernel k : {kernel::for_each, kernel::reduce}) {
      const double custom =
          run(a, *prof, params(k, kN30), 32, numa::placement::parallel_touch).seconds;
      const double standard =
          run(a, *prof, params(k, kN30), 32, numa::placement::sequential_touch).seconds;
      const double gain = standard / custom - 1.0;
      EXPECT_GT(gain, 0.25) << prof->name << " " << kernel_name(k);
      EXPECT_LT(gain, 1.0) << prof->name << " " << kernel_name(k);
    }
  }
}

TEST(Shape_Allocator, CustomAllocatorHurtsFindAndScan) {
  // Fig. 1: -24 % find, -19 % inclusive_scan.
  const machine& a = machines::mach_a();
  const auto& tbb = profiles::gcc_tbb();
  for (kernel k : {kernel::find, kernel::inclusive_scan}) {
    const double custom =
        run(a, tbb, params(k, kN30), 32, numa::placement::parallel_touch).seconds;
    const double standard =
        run(a, tbb, params(k, kN30), 32, numa::placement::sequential_touch).seconds;
    EXPECT_GT(custom, standard) << kernel_name(k);          // a regression...
    EXPECT_LT(custom, standard * 1.45) << kernel_name(k);   // ...but a bounded one
  }
}

// --- Table 3/4: counters ---------------------------------------------------------

TEST(Shape_Counters, HpxExecutesTheMostInstructions) {
  // Table 3: HPX 3.83T vs ICC 1.55T (for_each); Table 4: HPX 1.74T vs
  // ICC 107G (reduce, > 6x everyone else).
  const machine& a = machines::mach_a();
  const auto hpx_fe = run(a, profiles::gcc_hpx(), params(kernel::for_each, kN30), 32);
  const auto icc_fe = run(a, profiles::icc_tbb(), params(kernel::for_each, kN30), 32);
  EXPECT_GT(hpx_fe.ctrs.instructions, 2.0 * icc_fe.ctrs.instructions);
  const auto hpx_red = run(a, profiles::gcc_hpx(), params(kernel::reduce, kN30), 32);
  for (const backend_profile* other :
       {&profiles::gcc_tbb(), &profiles::gcc_gnu(), &profiles::icc_tbb(),
        &profiles::nvc_omp()}) {
    const auto r = run(a, *other, params(kernel::reduce, kN30), 32);
    EXPECT_GT(hpx_red.ctrs.instructions, 5.0 * r.ctrs.instructions) << other->name;
  }
}

TEST(Shape_Counters, OnlyIccAndHpxVectorizeReduce) {
  const machine& a = machines::mach_a();
  EXPECT_GT(run(a, profiles::icc_tbb(), params(kernel::reduce, kN30), 32).ctrs.fp_256, 0);
  EXPECT_GT(run(a, profiles::gcc_hpx(), params(kernel::reduce, kN30), 32).ctrs.fp_256, 0);
  EXPECT_EQ(run(a, profiles::gcc_tbb(), params(kernel::reduce, kN30), 32).ctrs.fp_256, 0);
  EXPECT_EQ(run(a, profiles::gcc_gnu(), params(kernel::reduce, kN30), 32).ctrs.fp_256, 0);
  EXPECT_EQ(run(a, profiles::nvc_omp(), params(kernel::reduce, kN30), 32).ctrs.fp_256, 0);
}

// --- Table 7: binary sizes --------------------------------------------------------

TEST(Shape_BinarySizes, OrderingMatchesTable7) {
  EXPECT_GT(profiles::gcc_hpx().binary_size_mib, profiles::gcc_tbb().binary_size_mib);
  EXPECT_GT(profiles::gcc_tbb().binary_size_mib, profiles::gcc_gnu().binary_size_mib);
  EXPECT_GT(profiles::gcc_gnu().binary_size_mib, profiles::gcc_seq().binary_size_mib);
  EXPECT_GT(profiles::gcc_seq().binary_size_mib, profiles::nvc_omp().binary_size_mib);
}

}  // namespace
}  // namespace pstlb::sim
