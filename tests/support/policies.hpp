// Shared test fixtures: the backend/policy matrix every algorithm test runs
// over, plus the size grid for boundary coverage.
#pragma once

#include <vector>

#include "pstlb/exec.hpp"

namespace pstlb::test {

/// Thread count for tests: enough for real interleaving even on small hosts.
inline constexpr unsigned kTestThreads = 4;

/// Sizes chosen to hit boundaries: empty, single, tiny, around chunk/grain
/// edges, non-power-of-two, and big enough to split many chunks.
inline const std::vector<index_t>& test_sizes() {
  static const std::vector<index_t> sizes{0,    1,    2,    3,     7,     8,
                                          63,   64,   65,   1023,  1024,  1025,
                                          4096, 9973, 65536};
  return sizes;
}

/// A policy with its sequential-fallback threshold disabled so even tiny
/// inputs exercise the parallel code path.
template <class P>
P make_eager(unsigned threads = kTestThreads, index_t grain = 0) {
  P policy{threads};
  policy.seq_threshold = 0;
  policy.grain = grain;
  return policy;
}

}  // namespace pstlb::test

/// Typed-test backend list (policy types).
using PstlbPolicyTypes =
    ::testing::Types<pstlb::exec::fork_join_policy, pstlb::exec::omp_static_policy,
                     pstlb::exec::omp_dynamic_policy, pstlb::exec::steal_policy,
                     pstlb::exec::task_policy>;
