#!/usr/bin/env python3
"""Minimal draft-07 JSON-schema checker (stdlib only) for CI.

Covers exactly the subset our schemas use: type (object/array/string/
integer/number/boolean), required, properties, additionalProperties
(false or a sub-schema), items, enum, pattern, minimum/maximum,
minLength, minItems.

Usage: validate_schema.py SCHEMA DOC [DOC...]
"""
import json
import re
import sys


def check(value, sch, path):
    t = sch.get('type')
    if t == 'object':
        assert isinstance(value, dict), f'{path}: expected object'
        for k in sch.get('required', []):
            assert k in value, f'{path}: missing required key {k!r}'
        props = sch.get('properties', {})
        extra_schema = sch.get('additionalProperties')
        if extra_schema is False:
            extra = set(value) - set(props)
            assert not extra, f'{path}: unexpected keys {sorted(extra)}'
        for k, v in value.items():
            if k in props:
                check(v, props[k], f'{path}.{k}')
            elif isinstance(extra_schema, dict):
                check(v, extra_schema, f'{path}.{k}')
    elif t == 'array':
        assert isinstance(value, list), f'{path}: expected array'
        if 'minItems' in sch:
            assert len(value) >= sch['minItems'], \
                f'{path}: {len(value)} items < minItems {sch["minItems"]}'
        for i, v in enumerate(value):
            check(v, sch['items'], f'{path}[{i}]')
    elif t == 'string':
        assert isinstance(value, str), f'{path}: expected string'
        if 'minLength' in sch:
            assert len(value) >= sch['minLength'], f'{path}: too short'
        if 'pattern' in sch:
            assert re.match(sch['pattern'], value), f'{path}: {value!r}'
    elif t == 'integer':
        assert isinstance(value, int) and not isinstance(value, bool), \
            f'{path}: expected integer'
    elif t == 'number':
        assert isinstance(value, (int, float)) and not isinstance(value, bool), \
            f'{path}: expected number'
    elif t == 'boolean':
        assert isinstance(value, bool), f'{path}: expected boolean'
    if 'enum' in sch:
        assert value in sch['enum'], f'{path}: {value!r} not in {sch["enum"]}'
    if 'minimum' in sch and isinstance(value, (int, float)) \
            and not isinstance(value, bool):
        assert value >= sch['minimum'], f'{path}: {value} < minimum'
    if 'maximum' in sch and isinstance(value, (int, float)) \
            and not isinstance(value, bool):
        assert value <= sch['maximum'], f'{path}: {value} > maximum'


def main(argv):
    if len(argv) < 3:
        print(__doc__.strip(), file=sys.stderr)
        return 2
    with open(argv[1]) as f:
        schema = json.load(f)
    for doc_path in argv[2:]:
        with open(doc_path) as f:
            doc = json.load(f)
        check(doc, schema, '$')
        print(f'{doc_path}: valid against {argv[1]}')
    return 0


if __name__ == '__main__':
    sys.exit(main(sys.argv))
