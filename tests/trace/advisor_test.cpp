#include "trace/analysis/advisor.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <sstream>
#include <string>

#include "sim/run.hpp"
#include "trace/analysis/span_graph.hpp"

namespace pstlb::trace::analysis {
namespace {

constexpr double kN30 = 1024.0 * 1024.0 * 1024.0;

sim::kernel_params params_for(sim::kernel k) {
  sim::kernel_params p;
  p.kind = k;
  p.n = kN30;
  return p;
}

// ---------------------------------------------------------------------------
// Model side
// ---------------------------------------------------------------------------

// The acceptance bar: the closed-form work-span mirror must agree with the
// discrete-event simulator within 15 % at 8/32/128 threads on the Tab. 3/4
// kernels, for every parallel backend profile.
TEST(AdvisorModel, AgreesWithSimulatorWithin15Percent) {
  const sim::machine& m = sim::machines::mach_c();
  for (const sim::kernel k : {sim::kernel::for_each, sim::kernel::reduce}) {
    const sim::kernel_params p = params_for(k);
    for (const sim::backend_profile* prof : sim::profiles::parallel()) {
      const auto alloc = sim::paper_alloc_for(*prof);
      for (const unsigned threads : {8u, 32u, 128u}) {
        const double measured =
            sim::speedup_vs_gcc_seq(m, *prof, p, threads, alloc);
        const double pred_s = predict_seconds(
            m, *prof, p, threads, alloc, sim::thread_placement::scatter);
        if (measured <= 0 || pred_s <= 0) { continue; }  // unsupported combo
        const double predicted = sim::gcc_seq_seconds(m, p) / pred_s;
        EXPECT_LE(std::abs(predicted - measured), 0.15 * measured)
            << prof->name << " " << sim::kernel_name(k) << " @" << threads
            << "t: measured " << measured << "x, predicted " << predicted
            << "x";
      }
    }
  }
}

TEST(AdvisorModel, VerdictNamesDominantPhaseAndBound) {
  const sim::machine& m = sim::machines::mach_c();
  for (const sim::backend_profile* prof : sim::profiles::parallel()) {
    const verdict v = advise_model(m, *prof, params_for(sim::kernel::for_each),
                                   m.cores, sim::paper_alloc_for(*prof));
    EXPECT_EQ(v.source.rfind("model:", 0), 0u) << v.source;
    EXPECT_FALSE(v.curve.empty());
    EXPECT_GE(v.best_threads, 1u);
    EXPECT_GT(v.speedup_at_best, 1.0) << prof->name;
    EXPECT_FALSE(v.bottleneck_phase.empty()) << prof->name;
    EXPECT_NE(bound_kind_name(v.bound), "unknown");
    EXPECT_NE(v.summary().find("bottleneck: " + v.bottleneck_phase),
              std::string::npos);
  }
}

TEST(AdvisorModel, UnsupportedKernelReturnsNegative) {
  const sim::machine& m = sim::machines::mach_c();
  for (const sim::backend_profile* prof : sim::profiles::parallel()) {
    for (const sim::kernel k :
         {sim::kernel::for_each, sim::kernel::reduce,
          sim::kernel::inclusive_scan, sim::kernel::find, sim::kernel::sort}) {
      const sim::kernel_params p = params_for(k);
      const double s = predict_seconds(m, *prof, p, 8, sim::paper_alloc_for(*prof),
                                       sim::thread_placement::scatter);
      if (prof->tuning(k).unsupported) {
        EXPECT_LT(s, 0.0) << prof->name;
      } else {
        EXPECT_GT(s, 0.0) << prof->name << " " << sim::kernel_name(k);
      }
    }
  }
}

// ---------------------------------------------------------------------------
// Trace side: bound classification over hand-built graphs
// ---------------------------------------------------------------------------

span_graph graph_with(double work_ns, double span_ns, unsigned threads) {
  span_graph g;
  g.work_ns = work_ns;
  g.span_ns = span_ns;
  g.threads_observed = threads;
  g.critical_exec_ns = span_ns;
  return g;
}

TEST(AdvisorTrace, ComputeBoundByDefault) {
  const verdict v = advise(graph_with(1000, 10, 4));
  EXPECT_EQ(v.bound, bound_kind::compute_bound);
  EXPECT_EQ(v.source, "trace");
  EXPECT_DOUBLE_EQ(v.max_speedup, 100.0);
}

TEST(AdvisorTrace, SchedulerBoundWhenQueueWaitsDominate) {
  span_graph g = graph_with(1000, 10, 4);
  g.critical_queue_wait_ns = 400;  // 40 % of the critical wall
  const verdict v = advise(g);
  EXPECT_EQ(v.bound, bound_kind::scheduler_bound);
  EXPECT_GT(v.queue_wait_frac, 0.3);
}

TEST(AdvisorTrace, SpanBoundWhenLookbackWaitsDominate) {
  span_graph g = graph_with(1000, 10, 4);
  g.critical_lookback_wait_ns = 500;
  const verdict v = advise(g);
  EXPECT_EQ(v.bound, bound_kind::span_bound);
  EXPECT_GT(v.lookback_wait_frac, 0.3);
}

TEST(AdvisorTrace, SpanBoundWhenSpeedupTrailsThreadCount) {
  // 8 threads observed but the DAG only supports 1.67x: span-limited.
  const verdict v = advise(graph_with(1000, 600, 8));
  EXPECT_EQ(v.bound, bound_kind::span_bound);
}

TEST(AdvisorTrace, MemoryBoundFromBandwidthHints) {
  advice_hints hints;
  hints.bytes_moved = 80e9;
  hints.wall_s = 1.0;
  hints.peak_bw_gbs = 100.0;  // 80 % of peak achieved
  const verdict v = advise(graph_with(1000, 10, 4), hints);
  EXPECT_EQ(v.bound, bound_kind::memory_bound);
  EXPECT_NEAR(v.achieved_bw_frac, 0.8, 1e-9);
}

TEST(AdvisorTrace, RemoteTrafficBoundWhenStealsCrossNodes) {
  span_graph g = graph_with(1000, 10, 4);
  g.steals = 32;
  g.remote_steals = 20;
  const verdict v = advise(g);
  EXPECT_EQ(v.bound, bound_kind::remote_traffic_bound);
  EXPECT_NEAR(v.remote_steal_frac, 20.0 / 32.0, 1e-9);
}

TEST(AdvisorTrace, BrentCurveIsMonotoneAndStopsNearAsymptote) {
  const verdict v = advise(graph_with(1e6, 1e4, 8));
  ASSERT_GE(v.curve.size(), 2u);
  for (std::size_t i = 1; i < v.curve.size(); ++i) {
    EXPECT_GE(v.curve[i].speedup, v.curve[i - 1].speedup);
    EXPECT_GT(v.curve[i].threads, v.curve[i - 1].threads);
  }
  EXPECT_GE(v.curve.back().speedup, 0.9 * v.max_speedup);
  EXPECT_GE(v.speedup_at_best, 0.9 * v.max_speedup);
}

TEST(AdvisorTrace, SummaryFormat) {
  verdict v;
  v.speedup_at_best = 9.3;
  v.best_threads = 32;
  v.bottleneck_phase = "scatter";
  v.bound = bound_kind::memory_bound;
  EXPECT_EQ(v.summary(),
            "predicted max speedup 9.3x at 32t; bottleneck: scatter "
            "(memory_bound)");
}

// ---------------------------------------------------------------------------
// Serialization
// ---------------------------------------------------------------------------

TEST(AdvisorJson, ContainsEverySchemaKey) {
  const verdict v = advise(graph_with(1000, 100, 4));
  std::ostringstream os;
  write_json(v, os);
  const std::string json = os.str();
  for (const char* key :
       {"\"source\"", "\"work_s\"", "\"span_s\"", "\"max_speedup\"",
        "\"best_threads\"", "\"speedup_at_best\"", "\"bound\"",
        "\"bottleneck_phase\"", "\"summary\"", "\"detail\"", "\"curve\"",
        "\"waits\"", "\"lookback_frac\"", "\"steal_frac\"", "\"queue_frac\"",
        "\"remote_steal_frac\"", "\"achieved_bw_frac\"",
        "\"threads_observed\""}) {
    EXPECT_NE(json.find(key), std::string::npos) << key;
  }
  EXPECT_EQ(json.front(), '{');
  EXPECT_EQ(json.substr(json.size() - 2), "}\n");
}

TEST(AdvisorJson, EscapesControlAndNonAsciiInStrings) {
  verdict v;
  v.source = "trace";
  v.bottleneck_phase = std::string("ph\x01se\xff \"quoted\"\\");
  std::ostringstream os;
  write_json(v, os);
  const std::string json = os.str();
  EXPECT_NE(json.find("\\u0001"), std::string::npos);
  EXPECT_NE(json.find("\\u00ff"), std::string::npos);
  EXPECT_NE(json.find("\\\"quoted\\\""), std::string::npos);
  // No raw control bytes may survive into the document.
  for (const char c : json) {
    const auto u = static_cast<unsigned char>(c);
    EXPECT_TRUE(u >= 0x20 || c == '\n') << static_cast<int>(u);
  }
}

TEST(AdvisorText, MentionsWorkSpanAndVerdict) {
  const verdict v = advise(graph_with(2e6, 1e5, 4));
  std::ostringstream os;
  write_text(v, os);
  const std::string text = os.str();
  EXPECT_NE(text.find("scalability advisor [trace]"), std::string::npos);
  EXPECT_NE(text.find("work  T1"), std::string::npos);
  EXPECT_NE(text.find("span  T-inf"), std::string::npos);
  EXPECT_NE(text.find("verdict"), std::string::npos);
}

}  // namespace
}  // namespace pstlb::trace::analysis
