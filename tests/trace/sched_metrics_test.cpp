#include "trace/sched_metrics.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <thread>
#include <vector>

#include "backends/fork_join.hpp"
#include "counters/counters.hpp"
#include "pstlb/pstlb.hpp"
#include "sched/steal_pool.hpp"
#include "trace/trace.hpp"

namespace pstlb::trace {
namespace {

class TracedTest : public ::testing::Test {
 protected:
  void SetUp() override {
    set_enabled(true);
    before_ = collect();
  }
  void TearDown() override { set_enabled(false); }
  sched_metrics window() const { return delta(before_, collect()); }

  sched_metrics before_;
};

// Satellite regression: forced imbalance (one fat chunk) must produce at
// least one steal attempt; a perfectly static fork-join run must produce
// exactly zero.
TEST_F(TracedTest, StealPoolReportsStealsUnderForcedImbalance) {
  sched::steal_pool pool(3);
  sched::loop_context ctx;
  ctx.n = 8;
  ctx.grain = 1;  // 8 chunks; chunk 0 is deliberately fat
  ctx.run = [](void*, index_t b, index_t, unsigned) {
    if (b == 0) {
      std::this_thread::sleep_for(std::chrono::milliseconds(50));
    }
  };
  pool.run(4, ctx);
  const sched_metrics w = window();
  EXPECT_GE(w.steals_ok() + w.steals_failed(), 1u)
      << "a 50ms fat chunk must leave the other participants stealing";
  EXPECT_EQ(w.chunks(), 8u);
  EXPECT_GT(w.idle_s(), 0.0) << "threads starved behind the fat chunk";
}

TEST_F(TracedTest, StaticForkJoinRunHasZeroSteals) {
  backends::fork_join_backend be(4);
  std::vector<double> data(1 << 14, 1.0);
  be.for_blocks(static_cast<index_t>(data.size()), 1 << 10, nullptr,
                [&](index_t b, index_t e, unsigned) {
                  for (index_t i = b; i < e; ++i) {
                    data[static_cast<std::size_t>(i)] += 1.0;
                  }
                });
  const sched_metrics w = window();
  EXPECT_EQ(w.steals_ok(), 0u);
  EXPECT_EQ(w.steals_failed(), 0u);
  EXPECT_EQ(w.tasks_spawned(), 0u);
  EXPECT_EQ(w.range_splits(), 0u);
  EXPECT_EQ(w.chunks(), 16u);  // 4 slices x 4 grain-blocks
}

TEST_F(TracedTest, FuturesBackendSpawnsOneTaskPerChunk) {
  exec::task_policy policy{4};
  policy.grain = 1 << 12;  // 2^16 / 2^12 = 16 chunks
  std::vector<elem_t> data(1 << 16, elem_t{1});
  pstlb::for_each(policy, data.begin(), data.end(), [](elem_t& v) { v += 1; });
  const sched_metrics w = window();
  EXPECT_EQ(w.tasks_spawned(), 16u);
  EXPECT_EQ(w.chunks(), 16u);
  EXPECT_EQ(w.chunk_elems(), std::uint64_t{1} << 16);
  EXPECT_EQ(w.steals_ok() + w.steals_failed(), 0u);
}

TEST_F(TracedTest, StealBackendSplitsRangesInsteadOfSpawning) {
  exec::steal_policy policy{4};
  policy.grain = 1 << 10;
  std::vector<elem_t> data(1 << 15, elem_t{1});
  pstlb::for_each(policy, data.begin(), data.end(), [](elem_t& v) { v += 1; });
  const sched_metrics w = window();
  EXPECT_EQ(w.tasks_spawned(), 0u);
  EXPECT_GE(w.range_splits(), 1u);
  EXPECT_EQ(w.chunks(), 32u);
  EXPECT_EQ(w.chunk_elems(), std::uint64_t{1} << 15);
}

TEST_F(TracedTest, RegionCapturesSchedDelta) {
  counters::marker_registry::instance().reset();
  backends::fork_join_backend be(4);
  std::vector<double> data(1 << 14, 1.0);
  {
    counters::region r("traced-region");
    be.for_blocks(static_cast<index_t>(data.size()), 1 << 12, nullptr,
                  [&](index_t b, index_t e, unsigned) {
                    for (index_t i = b; i < e; ++i) {
                      data[static_cast<std::size_t>(i)] += 1.0;
                    }
                  });
  }
  const auto stats = counters::marker_registry::instance().snapshot();
  const auto it = stats.find("traced-region");
  ASSERT_NE(it, stats.end());
  EXPECT_DOUBLE_EQ(it->second.total.sched_chunks, 4.0);  // 4 slices, 1 block each
  EXPECT_DOUBLE_EQ(it->second.total.sched_steals_ok, 0.0);
  EXPECT_DOUBLE_EQ(it->second.total.sched_tasks_spawned, 0.0);
}

TEST_F(TracedTest, FoldIntoMarkersPublishesSchedColumns) {
  counters::marker_registry::instance().reset();
  backends::fork_join_backend be(2);
  std::vector<double> data(1 << 13, 1.0);
  be.for_blocks(static_cast<index_t>(data.size()), 1 << 12, nullptr,
                [&](index_t b, index_t e, unsigned) {
                  for (index_t i = b; i < e; ++i) {
                    data[static_cast<std::size_t>(i)] += 1.0;
                  }
                });
  fold_into_markers("sched-window", window());
  const auto stats = counters::marker_registry::instance().snapshot();
  const auto it = stats.find("sched-window");
  ASSERT_NE(it, stats.end());
  EXPECT_GT(it->second.total.sched_chunks, 0.0);
}

TEST_F(TracedTest, RemoteStealTaggingSplitsCounters) {
  // count_steal with local=false must land in the remote subset counters;
  // local steals must not.
  count_steal(pool_id::steal, true, 1, true);
  count_steal(pool_id::steal, true, 2, false);
  count_steal(pool_id::steal, false, 3, false);
  const sched_metrics w = window();
  EXPECT_EQ(w.steals_ok(), 2u);
  EXPECT_EQ(w.steals_remote_ok(), 1u);
  EXPECT_EQ(w.steals_failed(), 1u);
  EXPECT_EQ(w.steals_remote_failed(), 1u);
  EXPECT_DOUBLE_EQ(w.steal_local_fraction(), 0.5);
}

TEST(SchedMetricsMath, StealLocalFractionEdgeCases) {
  sched_metrics m;
  // No steals at all: everything was local by definition.
  EXPECT_DOUBLE_EQ(m.steal_local_fraction(), 1.0);
  thread_metrics t;
  t.ring_id = 0;
  t.steals_ok = 4;
  t.steals_remote_ok = 4;
  m.threads = {t};
  EXPECT_DOUBLE_EQ(m.steal_local_fraction(), 0.0);
}

TEST(SchedMetricsMath, PercentilesFromHistogram) {
  sched_metrics m;
  m.chunk_hist[10] = 90;  // 90 chunks of ~2^10
  m.chunk_hist[15] = 10;  // 10 chunks of ~2^15
  EXPECT_DOUBLE_EQ(m.chunk_size_p50(), 1024.0);
  EXPECT_DOUBLE_EQ(m.chunk_size_p95(), 32768.0);
  sched_metrics empty;
  EXPECT_DOUBLE_EQ(empty.chunk_size_p50(), 0.0);
  EXPECT_DOUBLE_EQ(empty.chunk_size_p95(), 0.0);
}

TEST(SchedMetricsMath, LoadImbalanceAndBusyFraction) {
  sched_metrics m;
  thread_metrics a;
  a.ring_id = 0;
  a.busy_s = 3.0;
  a.idle_s = 1.0;
  thread_metrics b;
  b.ring_id = 1;
  b.busy_s = 1.0;
  b.idle_s = 3.0;
  m.threads = {a, b};
  EXPECT_DOUBLE_EQ(m.load_imbalance(), 1.5);  // max 3 / mean 2
  EXPECT_DOUBLE_EQ(m.threads[0].busy_fraction(), 0.75);
  EXPECT_DOUBLE_EQ(m.threads[1].busy_fraction(), 0.25);
  sched_metrics idle_only;
  EXPECT_DOUBLE_EQ(idle_only.load_imbalance(), 0.0);
}

TEST(SchedMetricsMath, DeltaIsSaturatingAndKeepsNewThreads) {
  sched_metrics before;
  thread_metrics t0;
  t0.ring_id = 0;
  t0.chunks = 10;
  before.threads = {t0};
  before.chunk_hist[4] = 10;

  sched_metrics after;
  thread_metrics t0b = t0;
  t0b.chunks = 25;
  thread_metrics t1;
  t1.ring_id = 1;
  t1.chunks = 7;
  after.threads = {t0b, t1};
  after.chunk_hist[4] = 22;

  const sched_metrics d = delta(before, after);
  ASSERT_EQ(d.threads.size(), 2u);
  EXPECT_EQ(d.threads[0].chunks, 15u);
  EXPECT_EQ(d.threads[1].chunks, 7u);
  EXPECT_EQ(d.chunk_hist[4], 12u);

  // Saturation: a window that straddles a counter reset never underflows.
  const sched_metrics inverse = delta(after, before);
  EXPECT_EQ(inverse.threads[0].chunks, 0u);
}

// An empty window (back-to-back snapshots, no scheduler activity between
// them) must be all zeros with every derived statistic still well-defined.
TEST_F(TracedTest, EmptyWindowIsZeroWithDefinedDerivedStats) {
  const sched_metrics w = window();
  EXPECT_EQ(w.chunks(), 0u);
  EXPECT_EQ(w.chunk_elems(), 0u);
  EXPECT_EQ(w.steals_ok(), 0u);
  EXPECT_EQ(w.steals_failed(), 0u);
  EXPECT_EQ(w.tasks_spawned(), 0u);
  EXPECT_EQ(w.range_splits(), 0u);
  EXPECT_DOUBLE_EQ(w.busy_s(), 0.0);
  EXPECT_DOUBLE_EQ(w.idle_s(), 0.0);
  EXPECT_DOUBLE_EQ(w.chunk_size_p50(), 0.0);
  EXPECT_DOUBLE_EQ(w.chunk_size_p95(), 0.0);
  EXPECT_DOUBLE_EQ(w.load_imbalance(), 0.0);
  EXPECT_DOUBLE_EQ(w.steal_local_fraction(), 1.0);
}

// A single instant event mid-window must be accounted exactly — no other
// counter may move.
TEST_F(TracedTest, SingleEventWindowCountsExactlyOnce) {
  count_steal(pool_id::steal, /*ok=*/true, /*victim=*/2, /*local=*/false);
  const sched_metrics w = window();
  EXPECT_EQ(w.steals_ok(), 1u);
  EXPECT_EQ(w.steals_remote_ok(), 1u);
  EXPECT_EQ(w.steals_failed(), 0u);
  EXPECT_DOUBLE_EQ(w.steal_local_fraction(), 0.0);
  EXPECT_EQ(w.chunks(), 0u);
  EXPECT_EQ(w.tasks_spawned(), 0u);
  EXPECT_EQ(w.range_splits(), 0u);
}

// sched_metrics reads the monotonic ring COUNTERS, not the ring events: a
// window that overwrites the event ring many times over must still count
// every chunk exactly, while the event ring itself retains only the last
// `capacity()` events.
TEST_F(TracedTest, RingOverwriteMidWindowDoesNotClipCounters) {
  event_ring& ring = local_ring();
  const std::uint64_t pushed_before = ring.pushed();
  const std::size_t n = ring.capacity() + ring.capacity() / 2;
  for (std::size_t i = 0; i < n; ++i) {
    record_span(pool_id::fork_join, event_kind::chunk, span_begin(),
                /*elems=*/16);
  }
  const sched_metrics w = window();
  EXPECT_EQ(w.chunks(), n);
  EXPECT_EQ(w.chunk_elems(), n * 16u);
  // All 16-element chunks land in log2 bucket 4: the histogram is counter-
  // backed too, so wraparound cannot clip it either.
  EXPECT_EQ(w.chunk_hist[4], n);
  EXPECT_DOUBLE_EQ(w.chunk_size_p50(), 16.0);
  // The event ring, by contrast, did overwrite: it retains at most
  // capacity() events even though we pushed 1.5x that many.
  EXPECT_EQ(ring.pushed() - pushed_before, n);
  EXPECT_LE(ring.snapshot().size(), ring.capacity());
}

}  // namespace
}  // namespace pstlb::trace
