#include "trace/analysis/span_graph.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "pstlb/pstlb.hpp"
#include "trace/trace.hpp"

namespace pstlb::trace::analysis {
namespace {

/// Builds synthetic (event, tid) streams so each graph pass can be exercised
/// with exact expectations: hand-picked timestamps make work/span/gap values
/// round numbers.
struct trace_builder {
  std::vector<event> events;
  std::vector<std::uint32_t> tids;

  void span(std::uint32_t tid, event_kind k, pool_id p, std::uint64_t b,
            std::uint64_t e, std::uint64_t link = 0, std::uint64_t arg = 0) {
    events.push_back({b, e, arg, link, k, p});
    tids.push_back(tid);
  }
  void instant(std::uint32_t tid, event_kind k, pool_id p, std::uint64_t ts,
               std::uint64_t link = 0, std::uint64_t arg = 0) {
    span(tid, k, p, ts, ts, link, arg);
  }
  span_graph build() const { return build_span_graph(events, tids); }
};

std::size_t count_edges(const span_graph& g, edge_kind k) {
  std::size_t n = 0;
  for (const span_edge& e : g.edges) {
    if (e.kind == k) { ++n; }
  }
  return n;
}

std::size_t count_nodes(const span_graph& g, node_kind k) {
  std::size_t n = 0;
  for (const span_node& node : g.nodes) {
    if (node.kind == k) { ++n; }
  }
  return n;
}

const span_edge* find_edge(const span_graph& g, edge_kind k) {
  for (const span_edge& e : g.edges) {
    if (e.kind == k) { return &e; }
  }
  return nullptr;
}

TEST(SpanGraph, EmptyInputYieldsEmptyGraph) {
  const span_graph g = build_span_graph({}, {});
  EXPECT_TRUE(g.nodes.empty());
  EXPECT_TRUE(g.edges.empty());
  EXPECT_EQ(g.work_ns, 0.0);
  EXPECT_EQ(g.span_ns, 0.0);
  EXPECT_DOUBLE_EQ(g.max_speedup(), 1.0);
  EXPECT_DOUBLE_EQ(g.predicted_speedup(64), 1.0);
  EXPECT_EQ(g.dominant_phase(), "");
  EXPECT_EQ(g.threads_observed, 0u);
}

TEST(SpanGraph, BrentBoundMath) {
  span_graph g;
  g.work_ns = 1000;
  g.span_ns = 100;
  EXPECT_DOUBLE_EQ(g.predicted_speedup(1), 1000.0 / 1100.0);
  EXPECT_DOUBLE_EQ(g.predicted_speedup(8), 1000.0 / (125.0 + 100.0));
  EXPECT_DOUBLE_EQ(g.max_speedup(), 10.0);
  // P < 1 clamps to the serial point.
  EXPECT_DOUBLE_EQ(g.predicted_speedup(0), g.predicted_speedup(1));
}

TEST(SpanGraph, IndependentChunksSpanIsLongestNode) {
  trace_builder tb;
  // tid 0 runs two chunks back to back (schedule order, not causal); tid 1
  // one longer chunk. No links anywhere -> no causal edges.
  tb.span(0, event_kind::chunk, pool_id::fork_join, 0, 100);
  tb.span(0, event_kind::chunk, pool_id::fork_join, 100, 250);
  tb.span(1, event_kind::chunk, pool_id::fork_join, 0, 400);
  const span_graph g = tb.build();

  ASSERT_EQ(g.nodes.size(), 3u);
  EXPECT_DOUBLE_EQ(g.work_ns, 650.0);
  // Continuation edges exist (same-thread order) but are span-excluded: the
  // longest causal chain is the single 400 ns chunk.
  EXPECT_EQ(count_edges(g, edge_kind::continuation), 1u);
  EXPECT_DOUBLE_EQ(g.span_ns, 400.0);
  EXPECT_EQ(g.threads_observed, 2u);
  EXPECT_EQ(g.dominant_phase(), "loop");
  EXPECT_EQ(g.first_ns, 0u);
  EXPECT_EQ(g.last_ns, 400u);
}

TEST(SpanGraph, StealEdgeLinksSplitToThiefChunk) {
  const std::uint64_t range = link_range(5, 10);
  trace_builder tb;
  // Victim (tid 0): one chunk, then sheds [5,10) 50 ns after finishing it.
  tb.span(0, event_kind::chunk, pool_id::steal, 0, 100, link_task(0));
  tb.instant(0, event_kind::split, pool_id::steal, 150, range);
  // Thief (tid 1): steals the exact range, runs chunk 5 100 ns later.
  tb.instant(1, event_kind::steal_ok, pool_id::steal, 200, range, /*victim=*/0);
  tb.span(1, event_kind::chunk, pool_id::steal, 300, 400, link_task(5));
  const span_graph g = tb.build();

  EXPECT_EQ(g.steals, 1u);
  EXPECT_EQ(g.remote_steals, 0u);
  EXPECT_EQ(g.splits, 1u);
  EXPECT_EQ(count_nodes(g, node_kind::split_point), 1u);
  const span_edge* steal = find_edge(g, edge_kind::steal);
  ASSERT_NE(steal, nullptr);
  EXPECT_EQ(g.nodes[steal->from].kind, node_kind::split_point);
  EXPECT_EQ(g.nodes[steal->to].begin_ns, 300u);

  // Causal chain: victim chunk (100) -> split (0) -> thief chunk (100).
  EXPECT_DOUBLE_EQ(g.span_ns, 200.0);
  EXPECT_DOUBLE_EQ(g.work_ns, 200.0);
  // Gap attribution on the critical path: 50 ns victim->split (queue wait,
  // segment edge), 150 ns split@150 -> thief@300 (steal latency).
  EXPECT_DOUBLE_EQ(g.critical_steal_wait_ns, 150.0);
  EXPECT_DOUBLE_EQ(g.critical_queue_wait_ns, 50.0);
  EXPECT_DOUBLE_EQ(g.critical_exec_ns, 200.0);
  ASSERT_EQ(g.critical_path.size(), 3u);
  EXPECT_EQ(g.critical_path.back().via, edge_kind::steal);
}

TEST(SpanGraph, RemoteStealTagCounts) {
  const std::uint64_t range = link_range(0, 4);
  trace_builder tb;
  tb.instant(0, event_kind::split, pool_id::steal, 10, range);
  tb.instant(1, event_kind::steal_ok, pool_id::steal, 20, range,
             /*victim|remote=*/0 | steal_remote_bit);
  const span_graph g = tb.build();
  EXPECT_EQ(g.steals, 1u);
  EXPECT_EQ(g.remote_steals, 1u);
}

TEST(SpanGraph, DecoupledScanSplitsChunkAroundLookback) {
  trace_builder tb;
  // Chunk 0 (tid 0): fast path, publishes its prefix at chunk end.
  tb.span(0, event_kind::chunk, pool_id::scan, 0, 100, link_task(0));
  // Chunk 1 (tid 1): decoupled — a lookback span [60,120] nests inside the
  // chunk [50,200], so the node splits into reduce [50,60], publish @120,
  // scan [120,200].
  tb.span(1, event_kind::chunk, pool_id::scan, 50, 200, link_task(1));
  tb.span(1, event_kind::lookback, pool_id::scan, 60, 120, link_task(1));
  const span_graph g = tb.build();

  EXPECT_EQ(count_nodes(g, node_kind::scan_reduce), 1u);
  EXPECT_EQ(count_nodes(g, node_kind::scan_scan), 1u);
  EXPECT_EQ(count_nodes(g, node_kind::publish), 2u);
  EXPECT_EQ(count_nodes(g, node_kind::chunk), 1u);  // the fast-path chunk

  // Lookback chain: publish(0) @100 -> publish(1) @120 (the resume point).
  const span_edge* lb = find_edge(g, edge_kind::lookback_chain);
  ASSERT_NE(lb, nullptr);
  EXPECT_EQ(g.nodes[lb->from].end_ns, 100u);
  EXPECT_EQ(g.nodes[lb->to].kind, node_kind::publish);
  EXPECT_EQ(g.nodes[lb->to].begin_ns, 120u);

  // Work: chunk0 (100) + reduce (10) + scan (80). Span: the cross-chunk
  // chain chunk0 -> publish0 -> publish1 -> scan1 = 100 + 80 = 180, longer
  // than chunk 1's own reduce+scan (90).
  EXPECT_DOUBLE_EQ(g.work_ns, 190.0);
  EXPECT_DOUBLE_EQ(g.span_ns, 180.0);
  // The 20 ns publish0->publish1 gap is the lookback wait.
  EXPECT_DOUBLE_EQ(g.critical_lookback_wait_ns, 20.0);
  EXPECT_EQ(g.dominant_phase(), "scan");
}

TEST(SpanGraph, FastPathScanChainsPublishToNextChunkStart) {
  trace_builder tb;
  // Both chunks take the fast path (no lookback span): chunk c's consumer
  // point is its own start.
  tb.span(0, event_kind::chunk, pool_id::scan, 0, 100, link_task(0));
  tb.span(1, event_kind::chunk, pool_id::scan, 110, 200, link_task(1));
  const span_graph g = tb.build();

  const span_edge* lb = find_edge(g, edge_kind::lookback_chain);
  ASSERT_NE(lb, nullptr);
  EXPECT_EQ(g.nodes[lb->to].kind, node_kind::chunk);
  EXPECT_EQ(g.nodes[lb->to].begin_ns, 110u);
  // chunk0 (100) -> publish0 -> chunk1 (90).
  EXPECT_DOUBLE_EQ(g.span_ns, 190.0);
  EXPECT_DOUBLE_EQ(g.critical_lookback_wait_ns, 10.0);
}

TEST(SpanGraph, LookbackResolvedFromAggregatesGetsNoEdge) {
  trace_builder tb;
  // Chunk 1 resumes at 50, but task 0's prefix publish only lands at 5000
  // (far past the match tolerance): chunk 1 cannot have waited on it — it
  // terminated on aggregates alone, so no lookback edge.
  tb.span(0, event_kind::chunk, pool_id::scan, 4000, 5000, link_task(0));
  tb.span(1, event_kind::chunk, pool_id::scan, 10, 50, link_task(1));
  const span_graph g = tb.build();
  EXPECT_EQ(count_edges(g, edge_kind::lookback_chain), 0u);
}

TEST(SpanGraph, SpawnChainAndSpawnToChunkEdges) {
  trace_builder tb;
  for (std::uint64_t i = 0; i < 3; ++i) {
    tb.instant(0, event_kind::spawn, pool_id::task_queue, 10 * i, link_task(i));
    tb.span(static_cast<std::uint32_t>(1 + i), event_kind::chunk,
            pool_id::task_queue, 100, 200, link_task(i));
  }
  const span_graph g = tb.build();

  EXPECT_EQ(g.spawns, 3u);
  EXPECT_EQ(count_nodes(g, node_kind::spawn_point), 3u);
  // The submitter's serial enqueue chain: 2 segment edges between the three
  // spawn points, plus one spawn edge into each chunk.
  EXPECT_EQ(count_edges(g, edge_kind::spawn), 3u);
  std::size_t chain = 0;
  for (const span_edge& e : g.edges) {
    if (e.kind == edge_kind::segment &&
        g.nodes[e.from].kind == node_kind::spawn_point) {
      ++chain;
    }
  }
  EXPECT_EQ(chain, 2u);
}

TEST(SpanGraph, SpawnMatchesOnlyForwardInTimeChunks) {
  trace_builder tb;
  // Task index 7 appears twice (ring reuse across regions). The spawn at
  // t=5000 must bind to the later execution, never the earlier one.
  tb.span(1, event_kind::chunk, pool_id::task_queue, 100, 200, link_task(7));
  tb.instant(0, event_kind::spawn, pool_id::task_queue, 5000, link_task(7));
  tb.span(2, event_kind::chunk, pool_id::task_queue, 6000, 6100, link_task(7));
  const span_graph g = tb.build();

  const span_edge* spawn = find_edge(g, edge_kind::spawn);
  ASSERT_NE(spawn, nullptr);
  EXPECT_EQ(count_edges(g, edge_kind::spawn), 1u);
  EXPECT_EQ(g.nodes[spawn->to].begin_ns, 6000u);
}

TEST(SpanGraph, PhaseSpansLabelOverlappingChunks) {
  trace_builder tb;
  tb.span(0, event_kind::phase, pool_id::sort, 0, 100, 0, /*ordinal=*/0);
  tb.span(0, event_kind::phase, pool_id::sort, 100, 200, 0, 2);
  tb.span(0, event_kind::phase, pool_id::sort, 200, 300, 0, 7);
  tb.span(1, event_kind::chunk, pool_id::fork_join, 10, 60);    // mid 35
  tb.span(1, event_kind::chunk, pool_id::fork_join, 120, 180);  // mid 150
  tb.span(1, event_kind::chunk, pool_id::fork_join, 210, 290);  // mid 250
  tb.span(1, event_kind::chunk, pool_id::fork_join, 400, 500);  // outside
  const span_graph g = tb.build();

  std::vector<std::string> labels;
  for (const span_node& n : g.nodes) {
    if (n.is_work()) { labels.push_back(n.phase); }
  }
  ASSERT_EQ(labels.size(), 4u);
  EXPECT_EQ(labels[0], "sample");
  EXPECT_EQ(labels[1], "scatter");
  EXPECT_EQ(labels[2], "phase7");
  EXPECT_EQ(labels[3], "loop");
}

TEST(SpanGraph, IdleSpansAccumulateButAreNotNodes) {
  trace_builder tb;
  tb.span(0, event_kind::idle, pool_id::steal, 0, 500);
  tb.span(0, event_kind::idle, pool_id::steal, 600, 700);
  const span_graph g = tb.build();
  EXPECT_TRUE(g.nodes.empty());
  EXPECT_DOUBLE_EQ(g.idle_ns_total, 600.0);
}

TEST(SpanGraph, PhaseAttributionSumsMatchTotals) {
  trace_builder tb;
  tb.span(0, event_kind::chunk, pool_id::scan, 0, 100, link_task(0));
  tb.span(1, event_kind::chunk, pool_id::fork_join, 0, 300);
  const span_graph g = tb.build();
  double phase_work = 0;
  for (const phase_share& s : g.phases) { phase_work += s.work_ns; }
  EXPECT_DOUBLE_EQ(phase_work, g.work_ns);
  // Critical-share descending: the 300 ns "loop" chunk dominates.
  ASSERT_FALSE(g.phases.empty());
  EXPECT_EQ(g.phases.front().label, "loop");
}

// Live capture: a real steal-pool region plus a decoupled scan must produce
// a non-trivial graph whose invariants (span <= work, speedup curve
// monotone) hold on events we did not hand-craft.
TEST(SpanGraph, LiveCaptureFromStealBackendHoldsInvariants) {
  set_enabled(true);
  {
    exec::steal_policy pol{4};
    pol.seq_threshold = 0;
    std::vector<double> data(std::size_t{1} << 16, 1.0);
    pstlb::for_each(pol, data.begin(), data.end(), [](double& v) { v += 1; });
    std::vector<double> out(data.size());
    pstlb::inclusive_scan(pol, data.begin(), data.end(), out.begin());
  }
  set_enabled(false);

  std::vector<event> events;
  std::vector<std::uint32_t> tids;
  for (event_ring* ring : registry::instance().rings()) {
    for (const event& e : ring->snapshot()) {
      events.push_back(e);
      tids.push_back(ring->id());
    }
  }
  ASSERT_FALSE(events.empty());
  const span_graph g = build_span_graph(events, tids);
  EXPECT_GT(g.work_ns, 0.0);
  EXPECT_GT(g.span_ns, 0.0);
  EXPECT_LE(g.span_ns, g.work_ns + 1e-9);
  EXPECT_GE(g.threads_observed, 1u);
  EXPECT_GE(g.max_speedup(), 1.0);
  double prev = 0;
  for (double p = 1; p <= 256; p *= 2) {
    const double s = g.predicted_speedup(p);
    EXPECT_GE(s, prev);
    prev = s;
  }
}

}  // namespace
}  // namespace pstlb::trace::analysis
