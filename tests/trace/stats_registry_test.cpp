#include "trace/stats_registry.hpp"

#include <gtest/gtest.h>
#include <unistd.h>

#include <cstdlib>
#include <fstream>
#include <numeric>
#include <sstream>
#include <string>
#include <vector>

#include "pstlb/pstlb.hpp"

namespace pstlb::stats {
namespace {

/// Every test starts and ends with a clean, disabled registry — the slots
/// are process-global, so leftovers would leak between tests.
class StatsTest : public ::testing::Test {
 protected:
  void SetUp() override {
    set_enabled(false);
    reset();
  }
  void TearDown() override {
    set_enabled(false);
    reset();
  }
};

std::uint64_t calls_of(op o) {
  for (const op_snapshot& s : snapshot()) {
    if (s.o == o) { return s.calls; }
  }
  return 0;
}

TEST_F(StatsTest, DisabledRecordsNothing) {
  { scoped_call call(op::reduce); }
  { scoped_call call(op::sort); }
  EXPECT_TRUE(snapshot().empty());
}

TEST_F(StatsTest, EnableMidScopeDoesNotRecord) {
  // A scoped_call constructed while disabled must stay inert even if stats
  // get switched on before it destructs (it never read the clock).
  {
    scoped_call call(op::reduce);
    set_enabled(true);
  }
  EXPECT_TRUE(snapshot().empty());
}

TEST_F(StatsTest, EnabledCountsEveryOutermostCall) {
  set_enabled(true);
  for (int i = 0; i < 3; ++i) { scoped_call call(op::reduce); }
  { scoped_call call(op::sort); }
  const auto snaps = snapshot();
  ASSERT_EQ(snaps.size(), 2u);
  EXPECT_EQ(calls_of(op::reduce), 3u);
  EXPECT_EQ(calls_of(op::sort), 1u);
  // Histogram totals match the call counters.
  for (const op_snapshot& s : snaps) {
    const std::uint64_t hist_sum =
        std::accumulate(s.hist, s.hist + latency_buckets, std::uint64_t{0});
    EXPECT_EQ(hist_sum, s.calls);
    EXPECT_GE(s.max_ns, 0u);
  }
}

TEST_F(StatsTest, NestedCallsRecordOnlyTheOutermostOp) {
  set_enabled(true);
  {
    scoped_call outer(op::sort);
    scoped_call inner(op::merge);  // sort's merge phase: not user-visible
    scoped_call deeper(op::copy);
  }
  EXPECT_EQ(calls_of(op::sort), 1u);
  EXPECT_EQ(calls_of(op::merge), 0u);
  EXPECT_EQ(calls_of(op::copy), 0u);
}

TEST_F(StatsTest, FrontEndCallsLandUnderTheirOpName) {
  set_enabled(true);
  std::vector<double> v(1 << 12, 1.0);
  const double sum = pstlb::reduce(exec::seq_policy{}, v.begin(), v.end(), 0.0);
  EXPECT_DOUBLE_EQ(sum, static_cast<double>(v.size()));
  pstlb::for_each(exec::seq_policy{}, v.begin(), v.end(),
                  [](double& x) { x += 1; });
  EXPECT_EQ(calls_of(op::reduce), 1u);
  EXPECT_EQ(calls_of(op::for_each), 1u);
}

TEST_F(StatsTest, QuantilesAreBucketLowerBounds) {
  op_snapshot s;
  s.o = op::reduce;
  s.calls = 100;
  s.hist[4] = 100;  // every call in [16, 32) ns
  EXPECT_DOUBLE_EQ(s.p50_ns(), 16.0);
  EXPECT_DOUBLE_EQ(s.p95_ns(), 16.0);
  EXPECT_DOUBLE_EQ(s.p99_ns(), 16.0);

  op_snapshot split;
  split.o = op::sort;
  split.calls = 100;
  split.hist[3] = 90;   // [8, 16)
  split.hist[10] = 10;  // [1024, 2048)
  EXPECT_DOUBLE_EQ(split.p50_ns(), 8.0);
  EXPECT_DOUBLE_EQ(split.p95_ns(), 1024.0);

  const op_snapshot empty;
  EXPECT_DOUBLE_EQ(empty.p50_ns(), 0.0);
  EXPECT_DOUBLE_EQ(empty.mean_ns(), 0.0);
}

TEST_F(StatsTest, ResetClearsAllSlots) {
  set_enabled(true);
  { scoped_call call(op::reduce); }
  ASSERT_FALSE(snapshot().empty());
  reset();
  EXPECT_TRUE(snapshot().empty());
}

TEST_F(StatsTest, JsonShape) {
  set_enabled(true);
  { scoped_call call(op::reduce); }
  std::ostringstream os;
  write_json(os);
  const std::string json = os.str();
  EXPECT_EQ(json.rfind("{\"envelope\":{", 0), 0u);
  EXPECT_NE(json.find("\"ops\":["), std::string::npos);
  EXPECT_NE(json.find("\"knobs\":{"), std::string::npos);
  EXPECT_NE(json.find("\"op\":\"reduce\""), std::string::npos);
  EXPECT_NE(json.find("\"calls\":1"), std::string::npos);
  for (const char* key : {"\"total_ns\":", "\"max_ns\":", "\"p50_ns\":",
                          "\"p95_ns\":", "\"p99_ns\":", "\"hist\":["}) {
    EXPECT_NE(json.find(key), std::string::npos) << key;
  }
}

TEST_F(StatsTest, PrometheusExposition) {
  set_enabled(true);
  { scoped_call call(op::reduce); }
  std::ostringstream os;
  write_prometheus(os);
  const std::string text = os.str();
  EXPECT_NE(text.find("# TYPE pstlb_calls_total counter"), std::string::npos);
  EXPECT_NE(text.find("pstlb_calls_total{op=\"reduce\"} 1"), std::string::npos);
  EXPECT_NE(text.find("pstlb_latency_ns{op=\"reduce\",quantile=\"0.5\"}"),
            std::string::npos);
  EXPECT_NE(text.find("pstlb_latency_ns_count{op=\"reduce\"} 1"),
            std::string::npos);
}

TEST_F(StatsTest, SignalSafeDumpWritesOneLinePerLiveOp) {
  set_enabled(true);
  { scoped_call call(op::reduce); }
  { scoped_call call(op::sort); }
  int fds[2];
  ASSERT_EQ(::pipe(fds), 0);
  signal_safe_dump(fds[1]);
  ::close(fds[1]);
  std::string text;
  char buf[4096];
  ssize_t n;
  while ((n = ::read(fds[0], buf, sizeof(buf))) > 0) {
    text.append(buf, static_cast<std::size_t>(n));
  }
  ::close(fds[0]);
  EXPECT_NE(text.find("pstlb_stats op=reduce calls=1"), std::string::npos);
  EXPECT_NE(text.find("pstlb_stats op=sort calls=1"), std::string::npos);
}

TEST_F(StatsTest, DumpToEnvFileSelectsFormatByExtension) {
  set_enabled(true);
  { scoped_call call(op::reduce); }

  ::unsetenv("PSTLB_STATS_FILE");
  EXPECT_FALSE(dump_to_env_file());

  const std::string json_path = ::testing::TempDir() + "pstlb_stats_test.json";
  ::setenv("PSTLB_STATS_FILE", json_path.c_str(), 1);
  ASSERT_TRUE(dump_to_env_file());
  {
    std::ifstream in(json_path);
    std::stringstream buf;
    buf << in.rdbuf();
    EXPECT_NE(buf.str().find("\"ops\""), std::string::npos);
  }

  const std::string prom_path = ::testing::TempDir() + "pstlb_stats_test.prom";
  ::setenv("PSTLB_STATS_FILE", prom_path.c_str(), 1);
  ASSERT_TRUE(dump_to_env_file());
  {
    std::ifstream in(prom_path);
    std::stringstream buf;
    buf << in.rdbuf();
    EXPECT_NE(buf.str().find("# TYPE pstlb_calls_total"), std::string::npos);
  }
  ::unsetenv("PSTLB_STATS_FILE");
}

TEST_F(StatsTest, OpNamesCoverTheWholeEnum) {
  for (std::size_t i = 0; i < op_count; ++i) {
    const std::string_view name = op_name(static_cast<op>(i));
    EXPECT_FALSE(name.empty()) << i;
    EXPECT_NE(name, "unknown") << i;
  }
}

}  // namespace
}  // namespace pstlb::stats
