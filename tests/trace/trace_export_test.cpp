#include "trace/chrome_trace.hpp"

#include <gtest/gtest.h>

#include <cctype>
#include <cstdlib>
#include <fstream>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "backends/fork_join.hpp"
#include "trace/sched_metrics.hpp"
#include "trace/trace.hpp"

namespace pstlb::trace {
namespace {

// --- Minimal JSON validator -------------------------------------------------
// Recursive-descent syntax check (no DOM): enough to guarantee that
// ui.perfetto.dev's JSON loader will not reject the export for a syntax
// error. Returns the position after the parsed value, or npos on error.

class json_checker {
 public:
  explicit json_checker(const std::string& text) : text_(text) {}

  bool valid() {
    skip_ws();
    if (!value()) { return false; }
    skip_ws();
    return pos_ == text_.size();
  }

 private:
  bool value() {
    if (pos_ >= text_.size()) { return false; }
    switch (text_[pos_]) {
      case '{': return object();
      case '[': return array();
      case '"': return string();
      case 't': return literal("true");
      case 'f': return literal("false");
      case 'n': return literal("null");
      default: return number();
    }
  }

  bool object() {
    ++pos_;  // '{'
    skip_ws();
    if (peek() == '}') { ++pos_; return true; }
    for (;;) {
      skip_ws();
      if (!string()) { return false; }
      skip_ws();
      if (peek() != ':') { return false; }
      ++pos_;
      skip_ws();
      if (!value()) { return false; }
      skip_ws();
      if (peek() == ',') { ++pos_; continue; }
      if (peek() == '}') { ++pos_; return true; }
      return false;
    }
  }

  bool array() {
    ++pos_;  // '['
    skip_ws();
    if (peek() == ']') { ++pos_; return true; }
    for (;;) {
      skip_ws();
      if (!value()) { return false; }
      skip_ws();
      if (peek() == ',') { ++pos_; continue; }
      if (peek() == ']') { ++pos_; return true; }
      return false;
    }
  }

  bool string() {
    if (peek() != '"') { return false; }
    ++pos_;
    while (pos_ < text_.size() && text_[pos_] != '"') {
      if (text_[pos_] == '\\') { ++pos_; }
      ++pos_;
    }
    if (pos_ >= text_.size()) { return false; }
    ++pos_;  // closing quote
    return true;
  }

  bool number() {
    const std::size_t start = pos_;
    if (peek() == '-') { ++pos_; }
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) != 0 ||
            text_[pos_] == '.' || text_[pos_] == 'e' || text_[pos_] == 'E' ||
            text_[pos_] == '+' || text_[pos_] == '-')) {
      ++pos_;
    }
    return pos_ > start;
  }

  bool literal(const std::string& word) {
    if (text_.compare(pos_, word.size(), word) != 0) { return false; }
    pos_ += word.size();
    return true;
  }

  char peek() const { return pos_ < text_.size() ? text_[pos_] : '\0'; }
  void skip_ws() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_])) != 0) {
      ++pos_;
    }
  }

  const std::string& text_;
  std::size_t pos_ = 0;
};

/// Distinct `"tid":N` values among events whose line contains `needle`.
std::set<long> tids_matching(const std::string& json, const std::string& needle) {
  std::set<long> tids;
  std::size_t pos = 0;
  while ((pos = json.find(needle, pos)) != std::string::npos) {
    // Each event object is self-contained; find its "tid": within a small
    // window around the match.
    const std::size_t obj_begin = json.rfind('{', pos);
    const std::size_t tid_pos = json.find("\"tid\":", obj_begin);
    if (tid_pos != std::string::npos) {
      tids.insert(std::strtol(json.c_str() + tid_pos + 6, nullptr, 10));
    }
    pos += needle.size();
  }
  return tids;
}

constexpr unsigned kThreads = 4;
constexpr index_t kN = index_t{1} << 16;
constexpr index_t kGrain = index_t{1} << 12;

void run_fork_join() {
  backends::fork_join_backend be(kThreads);
  std::vector<double> data(static_cast<std::size_t>(kN), 1.0);
  be.for_blocks(kN, kGrain, nullptr,
                [&](index_t b, index_t e, unsigned) {
                  for (index_t i = b; i < e; ++i) {
                    data[static_cast<std::size_t>(i)] += 1.0;
                  }
                });
}

TEST(ChromeTrace, ExportsValidJsonWithOneTrackPerWorker) {
  set_enabled(true);
  const sched_metrics before = collect();
  run_fork_join();
  const sched_metrics window = delta(before, collect());
  std::ostringstream os;
  write_chrome_trace(os);
  set_enabled(false);
  const std::string json = os.str();

  ASSERT_FALSE(json.empty());
  EXPECT_TRUE(json_checker(json).valid()) << json.substr(0, 400);
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("\"thread_name\""), std::string::npos);

  // One track per participant: the caller + 3 pool workers all executed
  // fork_join chunks, so >= kThreads distinct tids carry chunk events.
  const std::set<long> chunk_tids = tids_matching(json, "\"name\":\"chunk\"");
  EXPECT_GE(chunk_tids.size(), kThreads);
  // And the window's accounting saw the same participation.
  unsigned active_threads = 0;
  for (const thread_metrics& t : window.threads) {
    if (t.chunks > 0) { ++active_threads; }
  }
  EXPECT_GE(active_threads, kThreads);
}

TEST(ChromeTrace, MetricsConsistentWithKnownForkJoinShape) {
  set_enabled(true);
  const sched_metrics before = collect();
  run_fork_join();
  const sched_metrics window = delta(before, collect());
  set_enabled(false);

  // Static fork-join, n = 2^16, grain = 2^12, 4 threads: each thread owns a
  // 2^14 slice walked in 4 blocks -> exactly 16 chunks covering every
  // element, no steals, no spawns, no splits.
  EXPECT_EQ(window.chunks(), 16u);
  EXPECT_EQ(window.chunk_elems(), static_cast<std::uint64_t>(kN));
  EXPECT_EQ(window.steals_ok(), 0u);
  EXPECT_EQ(window.steals_failed(), 0u);
  EXPECT_EQ(window.tasks_spawned(), 0u);
  EXPECT_EQ(window.range_splits(), 0u);
  // All chunks are exactly 2^12 elements: both percentiles hit that bucket.
  EXPECT_DOUBLE_EQ(window.chunk_size_p50(), static_cast<double>(kGrain));
  EXPECT_DOUBLE_EQ(window.chunk_size_p95(), static_cast<double>(kGrain));
  EXPECT_GT(window.busy_s(), 0.0);
  EXPECT_GE(window.load_imbalance(), 1.0);
}

TEST(ChromeTrace, FileExportRoundTrips) {
  set_enabled(true);
  run_fork_join();
  set_enabled(false);
  const std::string path = ::testing::TempDir() + "pstlb_trace_test.json";
  ASSERT_TRUE(write_chrome_trace_file(path));
  std::ifstream in(path);
  std::stringstream buffer;
  buffer << in.rdbuf();
  EXPECT_TRUE(json_checker(buffer.str()).valid());
}

}  // namespace
}  // namespace pstlb::trace
