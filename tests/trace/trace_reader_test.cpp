#include "trace/analysis/trace_reader.hpp"

#include <gtest/gtest.h>

#include <sstream>
#include <stdexcept>
#include <string>
#include <vector>

#include "pstlb/pstlb.hpp"
#include "trace/chrome_trace.hpp"
#include "trace/trace.hpp"

namespace pstlb::trace::analysis {
namespace {

template <class Policy>
void run_kernels() {
  Policy pol{4};
  pol.seq_threshold = 0;
  std::vector<double> data(std::size_t{1} << 14, 1.0);
  pstlb::for_each(pol, data.begin(), data.end(), [](double& v) { v += 1; });
  (void)pstlb::reduce(pol, data.begin(), data.end(), 0.0);
  std::vector<double> out(data.size());
  pstlb::inclusive_scan(pol, data.begin(), data.end(), out.begin());
}

/// Stable copy of every ring, taken while tracing is off: the exporter must
/// reproduce exactly these events.
void snapshot_rings(std::vector<event>& events, std::vector<std::uint32_t>& tids) {
  for (event_ring* ring : registry::instance().rings()) {
    for (const event& e : ring->snapshot()) {
      events.push_back(e);
      tids.push_back(ring->id());
    }
  }
}

// The acceptance bar: a capture spanning EVERY parallel backend (fork-join,
// OMP-static, OMP-dynamic, work-stealing, task-futures — chunk spans, splits,
// steals, spawns, scan lookback tickets) must round-trip through the
// Chrome-trace JSON with zero unparsed elements and bit-identical events.
TEST(TraceReader, RoundTripsEveryBackendWithZeroUnparsed) {
  set_enabled(true);
  run_kernels<exec::fork_join_policy>();
  run_kernels<exec::omp_static_policy>();
  run_kernels<exec::omp_dynamic_policy>();
  run_kernels<exec::steal_policy>();
  run_kernels<exec::task_policy>();
  // A sort adds phase spans from the samplesort/mergesort pipeline.
  {
    exec::steal_policy pol{4};
    pol.seq_threshold = 0;
    std::vector<int> keys(std::size_t{1} << 14);
    for (std::size_t i = 0; i < keys.size(); ++i) {
      keys[i] = static_cast<int>((i * 2654435761u) & 0xFFFF);
    }
    pstlb::sort(pol, keys.begin(), keys.end());
  }
  set_enabled(false);

  std::vector<event> expected;
  std::vector<std::uint32_t> expected_tids;
  snapshot_rings(expected, expected_tids);
  ASSERT_FALSE(expected.empty());

  std::ostringstream os;
  write_chrome_trace(os);
  const parsed_trace parsed = parse_chrome_trace(os.str());

  EXPECT_EQ(parsed.unparsed, 0u) << "every element we export must map back";
  EXPECT_GT(parsed.total_objects, expected.size());  // + thread_name metas
  ASSERT_EQ(parsed.events.size(), expected.size());
  for (std::size_t i = 0; i < expected.size(); ++i) {
    EXPECT_EQ(parsed.events[i].begin_ns, expected[i].begin_ns) << i;
    EXPECT_EQ(parsed.events[i].end_ns, expected[i].end_ns) << i;
    EXPECT_EQ(parsed.events[i].arg, expected[i].arg) << i;
    EXPECT_EQ(parsed.events[i].link, expected[i].link) << i;
    EXPECT_EQ(parsed.events[i].kind, expected[i].kind) << i;
    EXPECT_EQ(parsed.events[i].pool, expected[i].pool) << i;
    EXPECT_EQ(parsed.tids[i], expected_tids[i]) << i;
  }
  // Every ring got its thread_name meta event.
  EXPECT_EQ(parsed.thread_names.size(), registry::instance().rings().size());
}

TEST(TraceReader, MalformedJsonThrows) {
  EXPECT_THROW(parse_chrome_trace("not json at all"), std::runtime_error);
  EXPECT_THROW(parse_chrome_trace("{\"traceEvents\":["), std::runtime_error);
  EXPECT_THROW(parse_chrome_trace("{\"traceEvents\":[{\"name\":}]}"),
               std::runtime_error);
  EXPECT_THROW(parse_chrome_trace(""), std::runtime_error);
}

TEST(TraceReader, UnknownButWellFormedEventsOnlyBumpUnparsed) {
  const parsed_trace parsed = parse_chrome_trace(
      "{\"traceEvents\":[{\"name\":\"mystery\",\"ph\":\"Z\",\"pid\":1,"
      "\"tid\":7,\"ts\":0}]}");
  EXPECT_EQ(parsed.total_objects, 1u);
  EXPECT_EQ(parsed.unparsed, 1u);
  EXPECT_TRUE(parsed.events.empty());
}

// Satellite regression: hostile thread labels (control bytes, non-ASCII,
// quotes, backslashes) must export as valid JSON — \u00XX, never raw bytes —
// and parse back without error.
TEST(TraceReader, HostileThreadLabelsEscapeAndRoundTrip) {
  set_enabled(true);
  record_span(pool_id::fork_join, event_kind::chunk, span_begin(), 1);
  set_enabled(false);
  local_ring().set_label(std::string("evil\x01\x1f\xff \"quoted\"\\slash\n"));

  std::ostringstream os;
  write_chrome_trace(os);
  const std::string json = os.str();
  // The raw control/non-ASCII bytes must not appear in the document.
  for (const char c : json) {
    const auto u = static_cast<unsigned char>(c);
    EXPECT_TRUE((u >= 0x20 && u < 0x7F) || c == '\n') << static_cast<int>(u);
  }
  EXPECT_NE(json.find("\\u0001"), std::string::npos);
  EXPECT_NE(json.find("\\u001f"), std::string::npos);
  EXPECT_NE(json.find("\\u00ff"), std::string::npos);

  const parsed_trace parsed = parse_chrome_trace(json);
  EXPECT_EQ(parsed.unparsed, 0u);
  bool found = false;
  for (const auto& [tid, name] : parsed.thread_names) {
    if (name.find("evil") != std::string::npos &&
        name.find("\"quoted\"") != std::string::npos) {
      found = true;
    }
  }
  EXPECT_TRUE(found) << "escaped label must decode back to readable text";

  local_ring().set_label("");  // do not leak the hostile label to other tests
}

TEST(TraceReader, CounterSeriesRoundTrip) {
  set_enabled(true);
  record_counter_sample("perf/ipc", 1.5);
  record_counter_sample("perf/ipc", 2.25);
  set_enabled(false);

  std::ostringstream os;
  write_chrome_trace(os);
  const parsed_trace parsed = parse_chrome_trace(os.str());
  EXPECT_EQ(parsed.unparsed, 0u);
  auto it = parsed.counters.find("perf/ipc");
  ASSERT_NE(it, parsed.counters.end());
  ASSERT_GE(it->second.size(), 2u);
  EXPECT_NEAR(it->second[it->second.size() - 2].value, 1.5, 1e-3);
  EXPECT_NEAR(it->second.back().value, 2.25, 1e-3);
}

}  // namespace
}  // namespace pstlb::trace::analysis
