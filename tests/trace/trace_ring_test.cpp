#include "trace/trace.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

namespace pstlb::trace {
namespace {

event make_event(std::uint64_t arg) {
  event e;
  e.begin_ns = arg;
  e.end_ns = arg + 1;
  e.arg = arg;
  e.kind = event_kind::chunk;
  e.pool = pool_id::steal;
  return e;
}

TEST(EventRing, CapacityRoundsUpToPowerOfTwo) {
  EXPECT_EQ(event_ring(8).capacity(), 8u);
  EXPECT_EQ(event_ring(10).capacity(), 16u);
  EXPECT_EQ(event_ring(1).capacity(), 8u);  // floor
  EXPECT_EQ(event_ring(4096).capacity(), 4096u);
}

TEST(EventRing, EmptySnapshot) {
  event_ring ring(16);
  EXPECT_TRUE(ring.snapshot().empty());
  EXPECT_EQ(ring.pushed(), 0u);
}

TEST(EventRing, RetainsAllWhenUnderCapacity) {
  event_ring ring(16);
  for (std::uint64_t i = 0; i < 10; ++i) { ring.push(make_event(i)); }
  const auto events = ring.snapshot();
  ASSERT_EQ(events.size(), 10u);
  for (std::uint64_t i = 0; i < 10; ++i) {
    EXPECT_EQ(events[i].arg, i);  // oldest first
    EXPECT_EQ(events[i].kind, event_kind::chunk);
    EXPECT_EQ(events[i].pool, pool_id::steal);
  }
}

TEST(EventRing, OverwriteKeepsNewest) {
  event_ring ring(8);
  for (std::uint64_t i = 0; i < 20; ++i) { ring.push(make_event(i)); }
  EXPECT_EQ(ring.pushed(), 20u);
  const auto events = ring.snapshot();
  ASSERT_EQ(events.size(), 8u);
  for (std::uint64_t i = 0; i < 8; ++i) {
    EXPECT_EQ(events[i].arg, 12 + i);  // events 0..11 overwritten
  }
}

TEST(EventRing, ConcurrentWritersNeverYieldTornEvents) {
  // Multiple writers into ONE ring (the subsystem normally gives each
  // thread its own ring; the ring itself must still stay safe) plus a
  // snapshotting reader, all concurrent. Every returned event must be one
  // that some thread actually pushed: arg == begin_ns and arg < total.
  event_ring ring(64);
  constexpr unsigned kWriters = 4;
  constexpr std::uint64_t kPerWriter = 5000;
  std::atomic<bool> stop{false};
  std::atomic<std::uint64_t> torn{0};

  std::thread reader([&] {
    while (!stop.load(std::memory_order_acquire)) {
      for (const event& e : ring.snapshot()) {
        if (e.arg != e.begin_ns || e.arg >= kWriters * kPerWriter) {
          torn.fetch_add(1, std::memory_order_relaxed);
        }
      }
    }
  });
  std::vector<std::thread> writers;
  for (unsigned w = 0; w < kWriters; ++w) {
    writers.emplace_back([&, w] {
      for (std::uint64_t i = 0; i < kPerWriter; ++i) {
        const std::uint64_t arg = w * kPerWriter + i;
        event e = make_event(arg);
        e.end_ns = arg;  // keep arg == begin_ns invariant checked above
        e.begin_ns = arg;
        ring.push(e);
      }
    });
  }
  for (auto& t : writers) { t.join(); }
  stop.store(true, std::memory_order_release);
  reader.join();

  EXPECT_EQ(torn.load(), 0u);
  EXPECT_EQ(ring.pushed(), kWriters * kPerWriter);
  const auto final_events = ring.snapshot();
  EXPECT_LE(final_events.size(), ring.capacity());
  EXPECT_FALSE(final_events.empty());
}

TEST(TraceHooks, ConcurrentThreadsRecordIntoOwnRings) {
  set_enabled(true);
  const sched_totals before = totals();
  constexpr unsigned kThreads = 4;
  constexpr std::uint64_t kEach = 100;
  std::vector<std::thread> threads;
  for (unsigned t = 0; t < kThreads; ++t) {
    threads.emplace_back([] {
      for (std::uint64_t i = 0; i < kEach; ++i) {
        count_steal(pool_id::steal, i % 2 == 0, 1);
        const std::uint64_t t0 = span_begin();
        record_span(pool_id::steal, event_kind::chunk, t0, 32);
      }
    });
  }
  for (auto& t : threads) { t.join(); }
  const sched_totals after = totals();
  set_enabled(false);
  EXPECT_EQ(after.steals_ok - before.steals_ok, kThreads * kEach / 2);
  EXPECT_EQ(after.steals_failed - before.steals_failed, kThreads * kEach / 2);
  EXPECT_EQ(after.chunks - before.chunks, kThreads * kEach);
}

TEST(TraceHooks, DisabledHotPathEmitsNothing) {
  set_enabled(false);
  event_ring& ring = local_ring();
  const std::uint64_t pushed_before = ring.pushed();
  const std::uint64_t steals_before =
      ring.counters.steals_ok.load(std::memory_order_relaxed) +
      ring.counters.steals_failed.load(std::memory_order_relaxed);
  const std::uint64_t chunks_before =
      ring.counters.chunks.load(std::memory_order_relaxed);

  for (int i = 0; i < 1000; ++i) {
    count_steal(pool_id::steal, true, 0);
    count_steal(pool_id::steal, false, 1);
    count_spawn(pool_id::task_queue);
    count_split(pool_id::steal);
    const std::uint64_t t0 = span_begin();
    EXPECT_EQ(t0, 0u);  // span never armed while disabled
    record_span(pool_id::fork_join, event_kind::chunk, t0, 64);
  }

  EXPECT_EQ(ring.pushed(), pushed_before);
  EXPECT_EQ(ring.counters.steals_ok.load(std::memory_order_relaxed) +
                ring.counters.steals_failed.load(std::memory_order_relaxed),
            steals_before);
  EXPECT_EQ(ring.counters.chunks.load(std::memory_order_relaxed), chunks_before);
  // Process-wide totals are reported as zero while tracing is off.
  const sched_totals t = totals();
  EXPECT_EQ(t.steals_ok, 0u);
  EXPECT_EQ(t.chunks, 0u);
}

TEST(TraceHooks, SpanArmedBeforeDisableIsDropped) {
  set_enabled(true);
  const std::uint64_t t0 = span_begin();
  EXPECT_GT(t0, 0u);
  set_enabled(false);
  event_ring& ring = local_ring();
  const std::uint64_t pushed_before = ring.pushed();
  record_span(pool_id::steal, event_kind::chunk, t0, 8);
  EXPECT_EQ(ring.pushed(), pushed_before);
}

TEST(TraceHooks, ThreadLabelFirstWins) {
  std::thread([] {
    set_thread_label("first");
    set_thread_label("second");
    EXPECT_EQ(local_ring().label(), "first");
  }).join();
}

}  // namespace
}  // namespace pstlb::trace
